"""Helpers inside the figures module."""

import pytest

from repro.core import figures


class TestGeomean:
    def test_single(self):
        assert figures._geomean([2.0]) == pytest.approx(2.0)

    def test_pair(self):
        assert figures._geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        a = figures._geomean([1.0, 2.0, 4.0])
        b = figures._geomean([2.0, 4.0, 8.0])
        assert b == pytest.approx(2 * a)


class TestSaturatingCacheSize:
    def test_small_footprint_saturates_small(self):
        # aes touches <1 KB: the smallest cache must already saturate.
        size = figures.saturating_cache_size("aes-aes", lanes=2,
                                             sizes=(2, 8))
        assert size == 2

    def test_returns_swept_size(self):
        size = figures.saturating_cache_size("kmp", lanes=2, sizes=(2, 4))
        assert size in (2, 4)


class TestMemo:
    def test_memo_caches_and_clears(self):
        figures.clear_memo()
        calls = []

        def expensive():
            calls.append(1)
            return 42

        assert figures._memoized("k", expensive) == 42
        assert figures._memoized("k", expensive) == 42
        assert len(calls) == 1
        figures.clear_memo()
        figures._memoized("k", expensive)
        assert len(calls) == 2


class TestFigureSubsets:
    def test_fig6_workloads_span_dma_time_range(self):
        """The paper picks benchmarks 'whose DMA times span the range shown
        in Figure 2b' — our subset must include compute-bound and
        data-bound members."""
        rows = figures.fig2b(figures.FIG6_WORKLOADS)
        fracs = [r.compute_fraction for r in rows]
        assert max(fracs) > 0.5
        assert min(fracs) < 0.3
