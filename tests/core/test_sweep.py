"""Design-space generators and sweep execution."""

import pytest

from repro.core.sweep import cache_design_space, dma_design_space, run_sweep


class TestDesignSpaces:
    def test_quick_dma_space(self):
        designs = dma_design_space("quick")
        assert len(designs) == 9  # 3 lanes x 3 parts
        assert all(d.is_dma for d in designs)

    def test_full_dma_space(self):
        assert len(dma_design_space("full")) == 25

    def test_full_cache_space(self):
        # 5 lanes x 6 sizes x 4 ports x 2 assoc
        assert len(cache_design_space("full")) == 240

    def test_all_cache_points_valid(self):
        for d in cache_design_space("standard"):
            assert d.mem_interface == "cache"
            d.validate()

    def test_unknown_density(self):
        with pytest.raises(ValueError):
            dma_design_space("exhaustive")

    def test_dma_optimizations_default_on(self):
        for d in dma_design_space("quick"):
            assert d.pipelined_dma
            assert d.dma_triggered_compute

    def test_optimizations_can_be_disabled(self):
        for d in dma_design_space("quick", pipelined=False, triggered=False):
            assert not d.pipelined_dma
            assert not d.dma_triggered_compute

    def test_unique_keys(self):
        for space in (dma_design_space("full"), cache_design_space("full")):
            keys = [d.key() for d in space]
            assert len(keys) == len(set(keys))


class TestRunSweep:
    def test_sweep_runs_all_points(self):
        designs = dma_design_space("quick")[:3]
        results = run_sweep("aes-aes", designs)
        assert len(results) == 3
        assert [r.design for r in results] == designs

    def test_progress_callback(self):
        calls = []
        run_sweep("aes-aes", dma_design_space("quick")[:2],
                  progress=lambda i, n: calls.append((i, n)))
        assert calls == [(1, 2), (2, 2)]
