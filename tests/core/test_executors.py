"""The pluggable executor seam behind the sweep engine."""

import warnings

import pytest

from repro.core.config import DesignPoint
from repro.core.executors import (
    ExecutionPlan,
    InlineExecutor,
    LocalPoolExecutor,
    RemoteExecutor,
    resolve_executor,
)
from repro.core.export import results_to_json
from repro.core.soc import run_design
from repro.core.sweep import dma_design_space, run_sweep
from repro.core.sweeppool import SweepMetrics, run_sweep_pool

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


def _collecting_plan(designs, **kwargs):
    """A plan whose finish/fail callbacks record into plain lists."""
    finished = {}
    failed = {}
    plan = ExecutionPlan(
        WORKLOAD, designs,
        finish=lambda i, result, elapsed: finished.__setitem__(i, result),
        fail=lambda i, attempts, kind, error, tb:
            failed.__setitem__(i, (kind, error)),
        **kwargs)
    return plan, finished, failed


class TestExecutionPlan:
    def test_defaults_cover_every_index(self):
        designs = quick_designs(3)
        plan = ExecutionPlan(WORKLOAD, designs)
        assert plan.pending == [(0, 1), (1, 1), (2, 1)]

    def test_task_tuple_shape(self):
        designs = quick_designs(2)
        plan = ExecutionPlan(WORKLOAD, designs, faults={"x": 1})
        index, wl, design, cfg, attempt, faults = plan.task(1, 3)
        assert (index, wl, design, attempt) == (1, WORKLOAD, designs[1], 3)
        assert faults == {"x": 1}


class TestInlineExecutor:
    def test_matches_run_design(self):
        designs = quick_designs(2)
        plan, finished, failed = _collecting_plan(designs)
        leftover = InlineExecutor().execute(plan)
        assert leftover == []
        assert not failed
        expected = [run_design(WORKLOAD, d) for d in designs]
        got = [finished[i] for i in range(len(designs))]
        assert results_to_json(got) == results_to_json(expected)

    def test_custom_evaluate_callable(self):
        designs = quick_designs(2)
        calls = []

        def evaluate(task):
            index = task[0]
            calls.append(index)
            return index, f"result-{index}", 0.0

        plan, finished, _failed = _collecting_plan(designs,
                                                   evaluate=evaluate)
        InlineExecutor().execute(plan)
        assert calls == [0, 1]
        assert finished == {0: "result-0", 1: "result-1"}

    def test_nonrobust_error_propagates_raw(self):
        designs = quick_designs(1)

        def evaluate(task):
            raise RuntimeError("boom")

        plan, _finished, failed = _collecting_plan(designs,
                                                   evaluate=evaluate)
        with pytest.raises(RuntimeError, match="boom"):
            InlineExecutor().execute(plan)
        assert not failed

    def test_robust_error_goes_through_fail(self):
        designs = quick_designs(1)

        def evaluate(task):
            raise RuntimeError("boom")

        plan, _finished, failed = _collecting_plan(
            designs, robust=True, evaluate=evaluate)
        InlineExecutor().execute(plan)
        assert failed[0][0] == "error"
        assert "boom" in failed[0][1]

    def test_robust_retries_then_succeeds(self):
        designs = quick_designs(1)
        attempts = []

        def evaluate(task):
            attempts.append(task[4])
            if len(attempts) < 3:
                raise RuntimeError("flaky")
            return task[0], "ok", 0.0

        metrics = SweepMetrics()
        plan, finished, failed = _collecting_plan(
            designs, robust=True, retries=2, metrics=metrics,
            evaluate=evaluate)
        InlineExecutor().execute(plan)
        assert attempts == [1, 2, 3]
        assert finished == {0: "ok"}
        assert not failed
        assert metrics.retries == 2

    def test_robust_timeout_warns_unenforced(self):
        designs = quick_designs(1)
        plan, finished, _failed = _collecting_plan(
            designs, robust=True, timeout=60.0)
        with pytest.warns(RuntimeWarning, match="without timeout"):
            InlineExecutor().execute(plan)
        assert 0 in finished

    def test_resumes_from_first_attempt_offset(self):
        designs = quick_designs(1)
        seen = []

        def evaluate(task):
            seen.append(task[4])
            return task[0], "ok", 0.0

        plan, _finished, _failed = _collecting_plan(designs,
                                                    evaluate=evaluate)
        plan.pending = [(0, 5)]  # e.g. handed back by a collapsed pool
        InlineExecutor().execute(plan)
        assert seen == [5]


class TestLocalPoolExecutor:
    def test_matches_inline(self):
        designs = quick_designs(3)
        plan, finished, _failed = _collecting_plan(designs)
        LocalPoolExecutor(jobs=2).execute(plan)
        serial = run_sweep(WORKLOAD, designs)
        got = [finished[i] for i in range(len(designs))]
        assert results_to_json(got) == results_to_json(serial)

    def test_rejects_custom_evaluate(self):
        plan, _finished, _failed = _collecting_plan(
            quick_designs(1), evaluate=lambda task: (0, None, 0.0))
        with pytest.raises(ValueError, match="cannot cross"):
            LocalPoolExecutor(jobs=2).execute(plan)

    def test_effective_jobs_clamped_by_pending(self):
        pool = LocalPoolExecutor(jobs=8)
        assert pool.effective_jobs(3) == 3
        assert pool.effective_jobs(100) == 8
        assert pool.effective_jobs(0) == 1

    def test_availability_tracks_spawn_guard(self, monkeypatch):
        import repro.core.sweeppool as sweeppool
        monkeypatch.setattr(sweeppool, "_spawn_can_reimport_main",
                            lambda: False)
        assert not LocalPoolExecutor(jobs=2, mp_context="spawn").available()
        assert LocalPoolExecutor(jobs=2, mp_context="fork").available()

    def test_empty_pending_is_a_noop(self):
        plan, finished, _failed = _collecting_plan(quick_designs(2))
        plan.pending = []
        assert LocalPoolExecutor(jobs=2).execute(plan) == []
        assert finished == {}


class TestRemoteExecutor:
    def test_stub_refuses_without_transport(self):
        plan, _finished, _failed = _collecting_plan(quick_designs(1))
        with pytest.raises(NotImplementedError, match="transport"):
            RemoteExecutor().execute(plan)

    def test_transport_callable_evaluates(self):
        designs = quick_designs(2)
        shipped = []

        def transport(workload, design, cfg):
            shipped.append(design)
            return run_design(workload, design, cfg)

        plan, finished, _failed = _collecting_plan(designs)
        RemoteExecutor(transport=transport).execute(plan)
        assert shipped == designs
        expected = [run_design(WORKLOAD, d) for d in designs]
        got = [finished[i] for i in range(len(designs))]
        assert results_to_json(got) == results_to_json(expected)

    def test_transport_failures_use_plan_semantics(self):
        designs = quick_designs(1)

        def transport(workload, design, cfg):
            raise ConnectionError("far end down")

        plan, _finished, failed = _collecting_plan(designs, robust=True)
        RemoteExecutor(transport=transport).execute(plan)
        assert failed[0][0] == "error"
        assert "far end down" in failed[0][1]


class TestResolveExecutor:
    def test_single_job_is_inline(self):
        assert isinstance(resolve_executor(jobs=1, npending=5),
                          InlineExecutor)

    def test_multi_job_is_pool(self):
        assert isinstance(resolve_executor(jobs=4, npending=5),
                          LocalPoolExecutor)

    def test_no_pending_is_inline(self):
        assert isinstance(resolve_executor(jobs=4, npending=0),
                          InlineExecutor)

    def test_robust_timeout_forces_pool_even_serial(self):
        # timeout needs a worker process to kill, so jobs=1 still pools.
        ex = resolve_executor(jobs=1, robust=True, timeout=5.0, npending=2)
        assert isinstance(ex, LocalPoolExecutor)

    def test_spawn_unsafe_falls_back_inline(self, monkeypatch):
        import repro.core.sweeppool as sweeppool
        monkeypatch.setattr(sweeppool, "_spawn_can_reimport_main",
                            lambda: False)
        assert isinstance(resolve_executor(jobs=4, npending=5),
                          InlineExecutor)


class TestSweepIntegration:
    def test_run_sweep_pool_accepts_explicit_executor(self):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(2),
                                 executor=InlineExecutor(), metrics=metrics)
        serial = run_sweep(WORKLOAD, quick_designs(2))
        assert results_to_json(results) == results_to_json(serial)
        assert metrics.evaluated == 2

    def test_run_sweep_threads_executor_through(self):
        calls = []

        class SpyExecutor(InlineExecutor):
            def execute(self, plan):
                calls.append(len(plan.pending))
                return super().execute(plan)

        results = run_sweep(WORKLOAD, quick_designs(2),
                            executor=SpyExecutor())
        assert len(results) == 2
        assert calls == [2]

    def test_sweep_pareto_threads_executor_through(self):
        from repro.core.pareto import sweep_pareto
        calls = []

        class SpyExecutor(InlineExecutor):
            def execute(self, plan):
                calls.append(len(plan.pending))
                return super().execute(plan)

        frontier, best, results = sweep_pareto(
            WORKLOAD, quick_designs(3), executor=SpyExecutor())
        assert calls == [3]
        assert frontier and best in results

    def test_diagnostic_paths_reject_executor(self):
        from repro.sim.profiling import EventProfiler
        with pytest.raises(ValueError, match="executor"):
            run_sweep(WORKLOAD, quick_designs(1),
                      profiler=EventProfiler(), executor=InlineExecutor())

    def test_plain_run_sweep_uses_resolved_executor(self):
        # No knobs at all must still route through the executor seam and
        # stay bit-identical to the historical serial engine.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = run_sweep(WORKLOAD, quick_designs(2))
        assert len(results) == 2
        assert all(r.workload == WORKLOAD for r in results)
