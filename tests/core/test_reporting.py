"""Text rendering of results."""

from repro.core.config import DesignPoint
from repro.core.reporting import (
    breakdown_table,
    format_table,
    pareto_table,
    percent,
)
from tests.core.test_metrics import make_result


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [100, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # Columns align: every row has the same separator positions.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out


class TestResultTables:
    def test_breakdown_table_contains_classes(self):
        out = breakdown_table([make_result()], title="Fig 2b")
        assert "Fig 2b" in out
        assert "flush_only" in out
        assert "toy" in out

    def test_pareto_table(self):
        out = pareto_table([make_result()])
        assert "edp" in out

    def test_design_short_forms(self):
        dma = make_result()
        out = breakdown_table([dma])
        assert "dma" in out

    def test_cache_design_rendering(self):
        r = make_result()
        r.design = DesignPoint(mem_interface="cache", cache_size_kb=8)
        out = pareto_table([r])
        assert "8KB" in out


def test_percent():
    assert percent(0.064) == "6.4%"
