"""Cycle-class breakdowns and run metrics."""

import pytest

from repro.aladdin.power import EnergyBreakdown
from repro.core.config import DesignPoint
from repro.core.metrics import RunResult, classify_breakdown


class TestClassifyBreakdown:
    def test_disjoint_phases(self):
        bd = classify_breakdown(
            100,
            flush_intervals=[(0, 20)],
            dma_intervals=[(20, 60)],
            compute_intervals=[(60, 90)],
        )
        assert bd == {"flush_only": 20, "dma_flush": 40, "compute_dma": 0,
                      "compute_only": 30, "other": 10}

    def test_flush_overlapping_dma_counts_as_dma(self):
        bd = classify_breakdown(100, [(0, 50)], [(25, 75)], [])
        assert bd["flush_only"] == 25
        assert bd["dma_flush"] == 50
        assert bd["other"] == 25

    def test_compute_dma_overlap(self):
        bd = classify_breakdown(100, [], [(0, 60)], [(40, 100)])
        assert bd["compute_dma"] == 20
        assert bd["dma_flush"] == 40
        assert bd["compute_only"] == 40

    def test_compute_trumps_flush(self):
        bd = classify_breakdown(50, [(0, 50)], [], [(0, 50)])
        assert bd["compute_only"] == 50
        assert bd["flush_only"] == 0

    def test_sums_to_total(self):
        bd = classify_breakdown(200, [(0, 30), (50, 90)], [(20, 120)],
                                [(100, 180)])
        assert sum(bd.values()) == 200

    def test_empty_everything_is_other(self):
        bd = classify_breakdown(42, [], [], [])
        assert bd["other"] == 42


def make_result(total=1_000_000):
    bd = classify_breakdown(total, [(0, total // 4)],
                            [(total // 4, total // 2)],
                            [(total // 2, total)])
    energy = EnergyBreakdown()
    energy.fu_dynamic = 1000.0
    return RunResult("toy", DesignPoint(), total, total // 10_000, bd,
                     energy)


class TestRunResult:
    def test_fractions_sum_to_one(self):
        r = make_result()
        assert sum(r.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_compute_fraction(self):
        r = make_result()
        assert r.compute_fraction == pytest.approx(0.5)

    def test_power_and_edp_consistent(self):
        r = make_result()
        # P = E/t; EDP = E*t.
        assert r.edp == pytest.approx(
            r.power_mw * 1e-3 * (r.total_ticks / 1e12) ** 2)

    def test_time_us(self):
        assert make_result(2_000_000).time_us == pytest.approx(2.0)

    def test_summary_string(self):
        s = make_result().summary()
        assert "toy" in s and "edp" in s
