"""End-to-end SoC offload flows."""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.soc import SoC, run_design

FAST = "aes-aes"  # smallest workload: keeps flow tests quick
MED = "spmv-crs"


def dma_design(**kw):
    base = dict(lanes=4, partitions=4, mem_interface="dma",
                pipelined_dma=False, dma_triggered_compute=False)
    base.update(kw)
    return DesignPoint(**base)


class TestDMAFlow:
    def test_baseline_flow_completes(self):
        r = run_design(FAST, dma_design())
        assert r.total_ticks > 0
        assert sum(r.breakdown.values()) == r.total_ticks

    def test_flow_phases_ordered(self):
        soc = SoC(FAST, dma_design())
        soc.run()
        flush_end = soc.driver.flush_busy.merged()[-1][1]
        dma_start = soc.dma.busy.merged()[0][0]
        compute_start = soc.scheduler.start_tick
        assert flush_end <= dma_start <= compute_start

    def test_flush_covers_input_lines(self):
        soc = SoC(FAST, dma_design())
        soc.run()
        # sbox(256B) + key(16B) + buf(16B) -> 4 + 1 + 1 lines
        assert soc.driver.lines_flushed == 6

    def test_invalidate_covers_output_lines(self):
        soc = SoC(FAST, dma_design())
        soc.run()
        assert soc.driver.lines_invalidated == 1  # buf, 16 B

    def test_dma_moves_all_shared_bytes(self):
        soc = SoC(FAST, dma_design())
        soc.run()
        # in: sbox + key + buf = 288; out: buf = 16
        assert soc.dma.bytes_moved == 288 + 16

    def test_pipelined_dma_not_slower(self):
        base = run_design(MED, dma_design())
        piped = run_design(MED, dma_design(pipelined_dma=True))
        assert piped.total_ticks <= base.total_ticks

    def test_pipelined_dma_hides_flush(self):
        base = run_design(MED, dma_design())
        piped = run_design(MED, dma_design(pipelined_dma=True))
        assert piped.breakdown["flush_only"] < base.breakdown["flush_only"]

    def test_triggered_compute_overlaps(self):
        base = run_design(MED, dma_design(pipelined_dma=True))
        trig = run_design(MED, dma_design(pipelined_dma=True,
                                          dma_triggered_compute=True))
        assert trig.breakdown["compute_dma"] > base.breakdown["compute_dma"]
        assert trig.total_ticks <= base.total_ticks

    def test_baseline_has_no_compute_dma_overlap(self):
        r = run_design(MED, dma_design())
        assert r.breakdown["compute_dma"] == 0

    def test_functional_result_unaffected_by_design(self):
        # The trace is shared; the SoC must never corrupt workload data.
        from repro.workloads import cached_trace, get_workload
        run_design(FAST, dma_design())
        get_workload(FAST).verify(cached_trace(FAST))


class TestCacheFlow:
    def test_flow_completes(self):
        r = run_design(FAST, DesignPoint(mem_interface="cache"))
        assert r.total_ticks > 0
        assert "cache_miss_rate" in r.stats

    def test_no_flush_in_cache_mode(self):
        soc = SoC(FAST, DesignPoint(mem_interface="cache"))
        soc.run()
        assert soc.driver.lines_flushed == 0
        assert soc.driver.lines_invalidated == 0

    def test_dirty_cpu_data_forwarded_cache_to_cache(self):
        soc = SoC(FAST, DesignPoint(mem_interface="cache"))
        r = soc.run()
        assert r.stats["c2c_transfers"] > 0

    def test_tlb_exercised(self):
        r = run_design(FAST, DesignPoint(mem_interface="cache"))
        assert 0 < r.stats["tlb_miss_rate"] < 1

    def test_bigger_cache_not_slower(self):
        small = run_design(MED, DesignPoint(mem_interface="cache",
                                            cache_size_kb=2))
        big = run_design(MED, DesignPoint(mem_interface="cache",
                                          cache_size_kb=32))
        assert big.total_ticks <= small.total_ticks * 1.05

    def test_internal_arrays_do_not_touch_cache(self):
        soc = SoC("nw-nw", DesignPoint(mem_interface="cache"))
        r = soc.run()
        # The score matrix (2401 cells x ~4 accesses) stays in scratchpads;
        # only sequences and alignment outputs go through the cache.
        assert soc.spad.accesses > 5000
        assert (soc.accel_cache.reads + soc.accel_cache.writes) < 10_000


class TestSystemEffects:
    def test_wider_bus_is_faster(self):
        d = dma_design(pipelined_dma=True, dma_triggered_compute=True)
        t32 = run_design(MED, d, SoCConfig(bus_width_bits=32)).total_ticks
        t64 = run_design(MED, d, SoCConfig(bus_width_bits=64)).total_ticks
        assert t64 < t32

    def test_background_traffic_slows_offload(self):
        d = dma_design()
        quiet = run_design(MED, d, SoCConfig()).total_ticks
        loaded = run_design(
            MED, d, SoCConfig(background_traffic=True)).total_ticks
        assert loaded > quiet

    def test_deterministic_runs(self):
        a = run_design(MED, dma_design())
        b = run_design(MED, dma_design())
        assert a.total_ticks == b.total_ticks
        assert a.energy_pj == pytest.approx(b.energy_pj)

    def test_perfect_memory_bounds_cache_design(self):
        real = run_design(FAST, DesignPoint(mem_interface="cache"))
        ideal = run_design(FAST, DesignPoint(mem_interface="cache",
                                             perfect_memory=True))
        assert ideal.total_ticks < real.total_ticks


class TestEnergyAccounting:
    def test_dma_design_has_no_cache_energy(self):
        r = run_design(FAST, dma_design())
        assert r.energy.cache_dynamic == 0
        assert r.energy.tlb == 0
        assert r.energy.spad_dynamic > 0

    def test_cache_design_has_cache_and_tlb_energy(self):
        r = run_design(FAST, DesignPoint(mem_interface="cache"))
        assert r.energy.cache_dynamic > 0
        assert r.energy.tlb > 0

    def test_more_lanes_more_power(self):
        p1 = run_design(MED, dma_design(lanes=1, partitions=1)).power_mw
        p16 = run_design(MED, dma_design(lanes=16, partitions=16)).power_mw
        assert p16 > p1
