"""Streaming pipelines: back-pressured producer->consumer handoff."""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.pipeline import AcceleratorPipeline, PipelineStage
from repro.core.soc import run_design
from repro.errors import ConfigError

CHAIN2 = ["aes-aes", "kmp"]
CHAIN3 = ["aes-aes", "kmp", "viterbi"]


def stream_chain():
    """stencil's 4 KB output into kmp's 512 B text input: a link wide
    enough to split into several chunks (kmp's *default* first input is
    the 4-byte pattern, which would collapse to a single chunk)."""
    return ["stencil-stencil2d", PipelineStage("kmp", in_array="input")]


def run_pipeline(workloads=CHAIN2, **kwargs):
    kwargs.setdefault("check", True)
    pipe = AcceleratorPipeline(workloads, **kwargs)
    return pipe, pipe.run()


class TestValidation:
    def test_needs_two_stages(self):
        with pytest.raises(ConfigError):
            AcceleratorPipeline(["aes-aes"])

    def test_unknown_handoff_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorPipeline(CHAIN2, handoff="smoke-signals")

    def test_mismatched_interface_rejected(self):
        """A DMA handoff cannot include a cache-coupled stage (and vice
        versa): coherent-DMA mixing would need a flush protocol the model
        does not have."""
        cache_design = DesignPoint(mem_interface="cache")
        with pytest.raises(ConfigError):
            AcceleratorPipeline([("aes-aes", cache_design), "kmp"],
                                handoff="dma")
        with pytest.raises(ConfigError):
            AcceleratorPipeline(["aes-aes", ("kmp", DesignPoint())],
                                handoff="cache")

    def test_tiny_buffer_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorPipeline(CHAIN2, buffer_bytes=32)
        with pytest.raises(ConfigError):
            AcceleratorPipeline(CHAIN2, buffer_bytes=64,
                                double_buffer=True)

    def test_explicit_link_array_must_exist(self):
        spec = PipelineStage("kmp", in_array="no-such-array")
        with pytest.raises(ConfigError):
            AcceleratorPipeline(["aes-aes", spec])


class TestDmaHandoff:
    def test_depth2_completes_clean(self):
        pipe, result = run_pipeline(CHAIN2, buffer_bytes=512)
        assert result.makespan_ticks > 0
        assert result.depth == 2
        assert result.ordering_clean()
        link = result.links[0]
        assert link["handoffs"] == link["chunks"]

    def test_depth3_completes_clean(self):
        pipe, result = run_pipeline(CHAIN3, buffer_bytes=512)
        assert result.depth == 3
        assert len(result.links) == 2
        assert result.ordering_clean()
        for link in result.links:
            assert link["handoffs"] == link["chunks"]

    def test_consumer_never_reads_ahead_of_producer(self):
        """The ReadyBits ordering invariant: every chunk's pull opened at
        or after the tick its producer committed it."""
        _pipe, result = run_pipeline(CHAIN3, buffer_bytes=256)
        for link in result.links:
            for produced, started in zip(link["produced_ticks"],
                                         link["consume_start_ticks"]):
                assert produced is not None
                assert started is not None
                assert started >= produced

    def test_handoff_buffer_drained_at_end(self):
        """check=True runs the leak audit: committed-but-unconsumed chunks
        or parked waiters would have raised.  Belt and braces, inspect the
        bits directly too."""
        pipe, _result = run_pipeline(CHAIN2, buffer_bytes=512)
        for link in pipe.links:
            assert not any(link.bits._ready)
            assert link.bits.pending_waiters() == 0
            assert link.bits.pending_empty_waiters() == 0

    def test_back_pressure_buffer_size_changes_makespan(self):
        """Halving the handoff buffer must change the timing: chunk
        granularity and back-pressure stalls are modeled, not cosmetic."""
        _p1, big = run_pipeline(stream_chain(), buffer_bytes=512)
        _p2, small = run_pipeline(stream_chain(), buffer_bytes=256)
        assert small.makespan_ticks != big.makespan_ticks
        assert small.links[0]["chunks"] > big.links[0]["chunks"]

    def test_small_buffer_stalls_producer(self):
        """A buffer much smaller than the linked array forces the producer
        to wait for credit at least once."""
        _pipe, result = run_pipeline(stream_chain(), buffer_bytes=64)
        link = result.links[0]
        assert link["chunks"] > 1
        assert link["producer_stalls"] > 0
        assert link["producer_stall_ticks"] > 0

    def test_double_buffer_splits_ring(self):
        pipe, result = run_pipeline(stream_chain(), buffer_bytes=512,
                                    double_buffer=True)
        link = result.links[0]
        assert link["slots"] == 2
        assert link["chunk_bytes"] == 256
        assert result.ordering_clean()

    def test_consumer_park_is_measured(self):
        """Stage 1 launches at tick 0 but its linked input cannot arrive
        before stage 0 computes: the first pull must park."""
        _pipe, result = run_pipeline(CHAIN2, buffer_bytes=512)
        link = result.links[0]
        assert link["consumer_parks"] >= 1
        assert link["consumer_park_ticks"] > 0


class TestCacheHandoff:
    def test_depth2_completes_clean(self):
        _pipe, result = run_pipeline(CHAIN2, handoff="cache")
        assert result.ordering_clean()
        assert result.links[0]["mode"] == "cache"

    def test_depth3_completes_clean(self):
        _pipe, result = run_pipeline(CHAIN3, handoff="cache")
        assert result.depth == 3
        assert result.ordering_clean()

    def test_regions_are_aliased(self):
        """Zero-copy: the consumer's linked input window is the producer's
        output window."""
        pipe, _result = run_pipeline(CHAIN2, handoff="cache")
        producer, consumer = pipe.stages
        out = producer._linked_out
        inp = consumer._linked_in
        assert consumer.phys_base[inp] == producer.phys_base[out]
        assert consumer.virt_base[inp] == producer.virt_base[out]

    def test_consumer_gated_on_producer_fence(self):
        """The consumer's ioctl is held until the producer committed, so
        its compute cannot overlap stale data."""
        _pipe, result = run_pipeline(CHAIN2, handoff="cache")
        link = result.links[0]
        assert link["consumer_parks"] == 1
        assert link["consumer_park_ticks"] > 0


class TestResults:
    def test_makespan_is_slowest_stage(self):
        _pipe, result = run_pipeline(CHAIN2, buffer_bytes=512)
        assert result.makespan_ticks == max(
            r.total_ticks for r in result.stage_results)

    def test_stage_results_in_chain_order(self):
        _pipe, result = run_pipeline(CHAIN3, buffer_bytes=512)
        assert [r.workload for r in result.stage_results] == CHAIN3

    def test_to_dict_round_trips_through_json(self):
        import json
        _pipe, result = run_pipeline(CHAIN2, buffer_bytes=512)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["depth"] == 2
        assert payload["links"][0]["ordering_clean"] is True

    def test_speedup_vs_serial_defined(self):
        pipe, _result = run_pipeline(CHAIN2, buffer_bytes=512)
        speedup = pipe.speedup_vs_serial()
        assert speedup > 0
        # Memoized solo runs: second call computes nothing new.
        assert pipe.solo_results() is pipe.solo_results()

    def test_results_property_requires_run(self):
        pipe = AcceleratorPipeline(CHAIN2, check=False)
        with pytest.raises(RuntimeError):
            pipe.results

    def test_reg_stats_exposes_link_counters(self):
        from repro.obs.stats import StatRegistry
        pipe, _result = run_pipeline(CHAIN2, buffer_bytes=512)
        stats = pipe.reg_stats(StatRegistry())
        assert stats.value("pipeline.link0.handoffs") >= 1
        assert "pipeline.link0.producer_stall_ticks" in stats

    def test_deterministic_makespan(self):
        _p1, a = run_pipeline(CHAIN2, buffer_bytes=512)
        _p2, b = run_pipeline(CHAIN2, buffer_bytes=512)
        assert a.makespan_ticks == b.makespan_ticks


class TestAgainstSolo:
    def test_stage_zero_matches_solo_run_shape(self):
        """Stage 0 has no upstream; its offload flow is the standard one,
        so its result must be in the same ballpark as a solo run (it still
        shares the bus with downstream stages)."""
        pipe, result = run_pipeline(CHAIN2, buffer_bytes=512)
        solo = run_design("aes-aes", pipe.specs[0].design)
        first = result.stage_results[0]
        assert first.total_ticks >= solo.total_ticks * 0.5
        assert first.total_ticks <= solo.total_ticks * 3

    def test_background_traffic_slows_pipeline(self):
        cfg = SoCConfig(background_traffic=True)
        _p1, loaded = run_pipeline(CHAIN2, buffer_bytes=512, cfg=cfg)
        _p2, quiet = run_pipeline(CHAIN2, buffer_bytes=512)
        assert loaded.makespan_ticks > quiet.makespan_ticks
