"""Pipelining-mode plumbing through DesignPoint, sweeps, and services.

The ``round_barriers`` boolean became a three-way ``pipelining`` mode
plus an ``ii`` knob; everything here guards the seams of that migration:
legacy spellings keep meaning what they meant, cache keys stay stable
for non-modulo designs, and the new fields survive every layer that
copies or serializes a design.
"""

import pytest

from repro.core.calibrate import _combo_key, _norm_combo, design_class
from repro.core.config import DesignPoint
from repro.core.export import CSV_FIELDS, design_record
from repro.core.sweep import ii_design_space
from repro.errors import ConfigError


class TestDesignPointFields:
    def test_default_is_barriers_auto(self):
        d = DesignPoint()
        assert d.pipelining == "barriers"
        assert d.ii == "auto"
        assert d.loop_pipelining is False

    def test_legacy_boolean_maps_to_modes(self):
        assert DesignPoint(loop_pipelining=True).pipelining == "off"
        assert DesignPoint(loop_pipelining=False).pipelining == "barriers"

    def test_loop_pipelining_is_a_property(self):
        # Serialization layers iterate __dict__; the legacy boolean must
        # not appear there (it would shadow the real mode on round-trip).
        assert "loop_pipelining" not in DesignPoint().__dict__
        assert DesignPoint(pipelining="off").loop_pipelining is True

    def test_ii_canonicalized_for_non_modulo(self):
        # An II on a non-modulo design is meaningless: canonicalize so
        # equal designs hash equal.
        assert DesignPoint(ii=7).ii == "auto"
        assert DesignPoint(pipelining="off", ii=7).ii == "auto"
        assert DesignPoint(pipelining="modulo", ii=7).ii == 7

    def test_invalid_pipelining_rejected(self):
        with pytest.raises(ConfigError, match="pipelining"):
            DesignPoint(pipelining="sideways")

    def test_invalid_ii_rejected(self):
        for bad in (0, -3, True, "fast"):
            with pytest.raises(ConfigError, match="ii"):
                DesignPoint(pipelining="modulo", ii=bad)


class TestKeyStability:
    def test_legacy_and_new_spellings_share_a_key(self):
        assert DesignPoint(loop_pipelining=True).key() == \
            DesignPoint(pipelining="off").key()
        assert DesignPoint(loop_pipelining=False).key() == \
            DesignPoint(pipelining="barriers").key()

    def test_modulo_key_embeds_ii(self):
        auto = DesignPoint(pipelining="modulo").key()
        forced = DesignPoint(pipelining="modulo", ii=4).key()
        assert auto != forced
        assert ("modulo", 4) in forced

    def test_barrier_key_unchanged_by_migration(self):
        # Pre-migration caches keyed barriers as the boolean False; the
        # sweep-pool version bump invalidates them, but the in-process
        # key must stay a plain scalar for non-modulo designs.
        key = DesignPoint().key()
        assert ("modulo",) not in key
        assert not any(isinstance(part, tuple) for part in key[1:])


class TestReplace:
    def test_replace_legacy_boolean(self):
        d = DesignPoint(pipelining="modulo", ii=2)
        back = d.replace(loop_pipelining=True)
        assert back.pipelining == "off"
        assert back.ii == "auto"

    def test_replace_unrelated_field_keeps_mode(self):
        d = DesignPoint(pipelining="modulo", ii=2)
        wider = d.replace(lanes=8)
        assert wider.pipelining == "modulo"
        assert wider.ii == 2

    def test_replace_pipelining_directly(self):
        d = DesignPoint().replace(pipelining="modulo", ii=3)
        assert (d.pipelining, d.ii) == ("modulo", 3)


class TestSweepAxis:
    def test_ii_design_space_has_anchors_and_modulo_points(self):
        pts = ii_design_space()
        modes = [(p.pipelining, p.ii) for p in pts]
        assert ("barriers", "auto") in modes
        assert ("off", "auto") in modes
        assert ("modulo", "auto") in modes
        assert ("modulo", 4) in modes

    def test_ii_design_space_dedupes_by_key(self):
        pts = ii_design_space(iis=("auto", 2, 2, "auto"))
        keys = [p.key() for p in pts]
        assert len(keys) == len(set(keys))

    def test_base_design_threads_through(self):
        base = DesignPoint(lanes=8, partitions=8)
        pts = ii_design_space(base_design=base, iis=(1,))
        assert all(p.lanes == 8 for p in pts)


class TestExportFields:
    def test_csv_fields_include_modes(self):
        assert "pipelining" in CSV_FIELDS
        assert "ii" in CSV_FIELDS

    def test_design_record_round_trips_modes(self):
        rec = design_record(DesignPoint(pipelining="modulo", ii=4))
        assert rec["pipelining"] == "modulo"
        assert rec["ii"] == 4
        assert rec["loop_pipelining"] is False


class TestCalibrationClasses:
    def test_barrier_class_names_keep_historic_spelling(self):
        # Calibration profiles persist to disk: barrier-mode designs must
        # keep their pre-migration class names.
        assert design_class(DesignPoint()) == "dma:p1t1b0"

    def test_non_barrier_classes_get_suffixed(self):
        assert design_class(
            DesignPoint(pipelining="modulo")).endswith(":modulo")
        assert design_class(
            DesignPoint(pipelining="off")).endswith(":off")

    def test_combo_key_formats(self):
        assert _combo_key(2, 2, 2) == "2x2x2"
        assert _combo_key(2, 2, 2, "modulo", "4") == "2x2x2:modulo:4"
        assert _combo_key(2, 2, 2, "barriers", "auto") == "2x2x2"

    def test_norm_combo_pads_legacy_tuples(self):
        assert _norm_combo((2, 2, 2)) == (2, 2, 2, "barriers", "auto")
        full = (2, 2, 2, "modulo", "4")
        assert _norm_combo(full) == full


class TestServeAndCli:
    def test_httpd_accepts_both_spellings(self):
        from repro.serve.httpd import design_from_json
        legacy = design_from_json({"lanes": 2, "loop_pipelining": True})
        assert legacy.pipelining == "off"
        modern = design_from_json(
            {"lanes": 2, "pipelining": "modulo", "ii": 4})
        assert (modern.pipelining, modern.ii) == ("modulo", 4)

    def test_cli_ii_parser(self):
        from repro.cli import _ii_value
        assert _ii_value("auto") == "auto"
        assert _ii_value("8") == 8
        with pytest.raises(Exception):
            _ii_value("0")
        with pytest.raises(Exception):
            _ii_value("fast")

    def test_cli_design_args(self):
        from repro.cli import build_parser, design_from_args
        parser = build_parser()
        args = parser.parse_args(
            ["run", "aes-aes", "--pipelining", "modulo", "--ii", "4"])
        d = design_from_args(args)
        assert (d.pipelining, d.ii) == ("modulo", 4)
