"""Parallel, memoized sweep engine."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.core.sweeppool import (
    SweepCache,
    SweepMetrics,
    key_payload,
    resolve_jobs,
    run_sweep_pool,
    sweep_key,
)

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


class TestSweepKey:
    def test_stable_across_calls(self):
        d = DesignPoint(lanes=2, partitions=2)
        assert sweep_key(WORKLOAD, d) == sweep_key(WORKLOAD, d)
        assert sweep_key(WORKLOAD, d) == sweep_key(
            WORKLOAD, DesignPoint(lanes=2, partitions=2))

    def test_differs_by_workload_design_and_config(self):
        d = DesignPoint(lanes=2, partitions=2)
        base = sweep_key(WORKLOAD, d)
        assert sweep_key("nw-nw", d) != base
        assert sweep_key(WORKLOAD, d.replace(lanes=4)) != base
        assert sweep_key(WORKLOAD, d, SoCConfig(bus_width_bits=64)) != base

    def test_every_design_field_is_a_hash_input(self):
        """Fields off the sweep grid (e.g. perfect_memory) still invalidate."""
        d = DesignPoint(mem_interface="cache")
        assert sweep_key(WORKLOAD, d) != sweep_key(
            WORKLOAD, d.replace(perfect_memory=True))

    def test_default_config_matches_explicit_default(self):
        d = DesignPoint()
        assert sweep_key(WORKLOAD, d) == sweep_key(WORKLOAD, d, SoCConfig())

    def test_payload_is_json_roundtrippable(self):
        import json
        payload = key_payload(WORKLOAD, DesignPoint(), SoCConfig())
        assert json.loads(json.dumps(payload)) == payload


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, {"x": 1}, payload={"p": 1})
        assert cache.get("ab" + "0" * 62, payload={"p": 1}) == {"x": 1}
        assert len(cache) == 1

    def test_missing_key_is_none(self, tmp_path):
        assert SweepCache(str(tmp_path)).get("ff" + "0" * 62) is None

    def test_payload_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42, payload={"p": 1})
        assert cache.get(key, payload={"p": 2}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42, payload=None)
        path = cache._path(key)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        cache.put("cd" + "0" * 62, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("ab" + "0" * 62) is None

    def test_no_stray_tmp_files_after_put(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        stray = [f for _d, _s, fs in os.walk(str(tmp_path))
                 for f in fs if f.endswith(".tmp")]
        assert stray == []

    def test_payloadless_put_hits_verifying_get(self, tmp_path):
        # Regression: put(key, result) without payload used to store
        # {"key": None}; a later get(key, payload=...) read that None as
        # a payload mismatch, so the entry could never hit again.
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42)
        assert cache.get(key, payload={"p": 1}) == 42
        assert cache.get(key, payload={"p": 1}) == 42  # stays a hit
        assert cache.get(key) == 42


class TestMemoization:
    def test_cold_then_warm(self, tmp_path):
        designs = quick_designs()
        cold = SweepMetrics()
        first = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                               metrics=cold)
        assert cold.points == len(designs)
        assert cold.evaluated == len(designs)
        assert cold.cache_hits == 0

        warm = SweepMetrics()
        second = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                                metrics=warm)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(designs)
        assert results_to_json(first) == results_to_json(second)

    def test_config_change_invalidates(self, tmp_path):
        designs = quick_designs(2)
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        metrics = SweepMetrics()
        run_sweep_pool(WORKLOAD, designs, SoCConfig(bus_width_bits=64),
                       cache_dir=str(tmp_path), metrics=metrics)
        assert metrics.cache_hits == 0
        assert metrics.evaluated == len(designs)

    def test_cached_results_preserve_order(self, tmp_path):
        designs = quick_designs()
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        results = run_sweep_pool(WORKLOAD, designs,
                                 cache_dir=str(tmp_path))
        assert [r.design.key() for r in results] == \
            [d.key() for d in designs]


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        designs = quick_designs()
        serial = run_sweep(WORKLOAD, designs)
        parallel = run_sweep_pool(WORKLOAD, designs, jobs=2)
        assert results_to_json(serial) == results_to_json(parallel)
        assert [r.design.key() for r in parallel] == \
            [d.key() for d in designs]

    def test_parallel_fills_cache(self, tmp_path):
        designs = quick_designs(2)
        run_sweep_pool(WORKLOAD, designs, jobs=2, cache_dir=str(tmp_path))
        warm = SweepMetrics()
        run_sweep_pool(WORKLOAD, designs, jobs=2, cache_dir=str(tmp_path),
                       metrics=warm)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(designs)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunSweepIntegration:
    def test_run_sweep_serial_path_unchanged(self):
        designs = quick_designs(2)
        results = run_sweep(WORKLOAD, designs)
        assert len(results) == 2

    def test_run_sweep_threads_engine_options(self, tmp_path):
        designs = quick_designs(2)
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path),
                            metrics=metrics)
        assert len(results) == 2
        assert metrics.evaluated == 2

    def test_progress_counts_hits_and_evaluations(self, tmp_path):
        designs = quick_designs(2)
        run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path))
        calls = []
        run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path),
                  progress=lambda i, n: calls.append((i, n)))
        assert calls == [(1, 2), (2, 2)]


class TestSpawnSafety:
    def test_stdin_main_falls_back_to_inline(self, tmp_path):
        # A spawn worker re-imports __main__; when the parent runs from
        # stdin (python -, REPL) there is no file to re-import and the
        # pool would respawn crashing workers forever.  The engine must
        # detect that and evaluate inline instead of hanging.
        script = "\n".join([
            "from repro.core.sweep import dma_design_space, run_sweep",
            "from repro.core.sweeppool import SweepMetrics",
            "metrics = SweepMetrics()",
            "results = run_sweep('aes-aes', dma_design_space('quick')[:2],",
            "                    parallel=2, metrics=metrics)",
            "assert len(results) == 2 and metrics.evaluated == 2",
            "print('sweep-ok')",
        ])
        import repro
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [src_dir, env.get("PYTHONPATH")] if p)
        proc = subprocess.run(
            [sys.executable, "-"], input=script, text=True,
            capture_output=True, env=env, cwd=str(tmp_path), timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "sweep-ok" in proc.stdout

    def test_reimportable_main_uses_pool(self):
        # Under pytest, __main__ is the pytest entry point with a real
        # __spec__/__file__, so the guard must NOT disable the pool path.
        from repro.core.sweeppool import _spawn_can_reimport_main
        assert _spawn_can_reimport_main()

    def test_metrics_jobs_reflect_spawn_downgrade(self, monkeypatch):
        # Regression: metrics.jobs was recorded before the spawn-safety
        # fallback downgraded the run to inline, reporting parallelism
        # that never happened.
        import repro.core.sweeppool as sweeppool
        monkeypatch.setattr(sweeppool, "_spawn_can_reimport_main",
                            lambda: False)
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(2), jobs=4,
                                 mp_context="spawn", metrics=metrics)
        assert len(results) == 2
        assert metrics.jobs == 1  # effective, not requested
        assert metrics.evaluated == 2


class TestMetrics:
    def test_report_and_dict(self, tmp_path):
        metrics = SweepMetrics()
        run_sweep_pool(WORKLOAD, quick_designs(2), cache_dir=str(tmp_path),
                       metrics=metrics)
        d = metrics.as_dict()
        assert d["points"] == 2
        assert d["evaluated"] == 2
        assert d["wall_seconds"] > 0
        assert 0 < d["worker_utilization"] <= 1.0
        text = metrics.report()
        assert "cache hits" in text
        assert "worker util" in text

    def test_merge(self):
        a, b = SweepMetrics(), SweepMetrics()
        a.points, a.evaluated, a.point_seconds = 3, 3, [0.1, 0.2, 0.3]
        b.points, b.cache_hits = 2, 2
        a.merge(b)
        assert a.points == 5
        assert a.cache_hits == 2
        assert a.evaluated == 3
