"""Parallel, memoized sweep engine."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.core.sweeppool import (
    SweepCache,
    SweepMetrics,
    key_payload,
    resolve_jobs,
    run_sweep_pool,
    sweep_key,
)

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


class TestSweepKey:
    def test_stable_across_calls(self):
        d = DesignPoint(lanes=2, partitions=2)
        assert sweep_key(WORKLOAD, d) == sweep_key(WORKLOAD, d)
        assert sweep_key(WORKLOAD, d) == sweep_key(
            WORKLOAD, DesignPoint(lanes=2, partitions=2))

    def test_differs_by_workload_design_and_config(self):
        d = DesignPoint(lanes=2, partitions=2)
        base = sweep_key(WORKLOAD, d)
        assert sweep_key("nw-nw", d) != base
        assert sweep_key(WORKLOAD, d.replace(lanes=4)) != base
        assert sweep_key(WORKLOAD, d, SoCConfig(bus_width_bits=64)) != base

    def test_every_design_field_is_a_hash_input(self):
        """Fields off the sweep grid (e.g. perfect_memory) still invalidate."""
        d = DesignPoint(mem_interface="cache")
        assert sweep_key(WORKLOAD, d) != sweep_key(
            WORKLOAD, d.replace(perfect_memory=True))

    def test_default_config_matches_explicit_default(self):
        d = DesignPoint()
        assert sweep_key(WORKLOAD, d) == sweep_key(WORKLOAD, d, SoCConfig())

    def test_payload_is_json_roundtrippable(self):
        import json
        payload = key_payload(WORKLOAD, DesignPoint(), SoCConfig())
        assert json.loads(json.dumps(payload)) == payload


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, {"x": 1}, payload={"p": 1})
        assert cache.get("ab" + "0" * 62, payload={"p": 1}) == {"x": 1}
        assert len(cache) == 1

    def test_missing_key_is_none(self, tmp_path):
        assert SweepCache(str(tmp_path)).get("ff" + "0" * 62) is None

    def test_payload_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42, payload={"p": 1})
        assert cache.get(key, payload={"p": 2}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42, payload=None)
        path = cache._path(key)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        cache.put("cd" + "0" * 62, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("ab" + "0" * 62) is None

    def test_no_stray_tmp_files_after_put(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        stray = [f for _d, _s, fs in os.walk(str(tmp_path))
                 for f in fs if f.endswith(".tmp")]
        assert stray == []

    def test_payloadless_put_hits_verifying_get(self, tmp_path):
        # Regression: put(key, result) without payload used to store
        # {"key": None}; a later get(key, payload=...) read that None as
        # a payload mismatch, so the entry could never hit again.
        cache = SweepCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 42)
        assert cache.get(key, payload={"p": 1}) == 42
        assert cache.get(key, payload={"p": 1}) == 42  # stays a hit
        assert cache.get(key) == 42


class TestMemoization:
    def test_cold_then_warm(self, tmp_path):
        designs = quick_designs()
        cold = SweepMetrics()
        first = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                               metrics=cold)
        assert cold.points == len(designs)
        assert cold.evaluated == len(designs)
        assert cold.cache_hits == 0

        warm = SweepMetrics()
        second = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                                metrics=warm)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(designs)
        assert results_to_json(first) == results_to_json(second)

    def test_config_change_invalidates(self, tmp_path):
        designs = quick_designs(2)
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        metrics = SweepMetrics()
        run_sweep_pool(WORKLOAD, designs, SoCConfig(bus_width_bits=64),
                       cache_dir=str(tmp_path), metrics=metrics)
        assert metrics.cache_hits == 0
        assert metrics.evaluated == len(designs)

    def test_cached_results_preserve_order(self, tmp_path):
        designs = quick_designs()
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        results = run_sweep_pool(WORKLOAD, designs,
                                 cache_dir=str(tmp_path))
        assert [r.design.key() for r in results] == \
            [d.key() for d in designs]


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        designs = quick_designs()
        serial = run_sweep(WORKLOAD, designs)
        parallel = run_sweep_pool(WORKLOAD, designs, jobs=2)
        assert results_to_json(serial) == results_to_json(parallel)
        assert [r.design.key() for r in parallel] == \
            [d.key() for d in designs]

    def test_parallel_fills_cache(self, tmp_path):
        designs = quick_designs(2)
        run_sweep_pool(WORKLOAD, designs, jobs=2, cache_dir=str(tmp_path))
        warm = SweepMetrics()
        run_sweep_pool(WORKLOAD, designs, jobs=2, cache_dir=str(tmp_path),
                       metrics=warm)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(designs)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunSweepIntegration:
    def test_run_sweep_serial_path_unchanged(self):
        designs = quick_designs(2)
        results = run_sweep(WORKLOAD, designs)
        assert len(results) == 2

    def test_run_sweep_threads_engine_options(self, tmp_path):
        designs = quick_designs(2)
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path),
                            metrics=metrics)
        assert len(results) == 2
        assert metrics.evaluated == 2

    def test_progress_counts_hits_and_evaluations(self, tmp_path):
        designs = quick_designs(2)
        run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path))
        calls = []
        run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path),
                  progress=lambda i, n: calls.append((i, n)))
        assert calls == [(1, 2), (2, 2)]


class TestSpawnSafety:
    def test_stdin_main_falls_back_to_inline(self, tmp_path):
        # A spawn worker re-imports __main__; when the parent runs from
        # stdin (python -, REPL) there is no file to re-import and the
        # pool would respawn crashing workers forever.  The engine must
        # detect that and evaluate inline instead of hanging.
        script = "\n".join([
            "from repro.core.sweep import dma_design_space, run_sweep",
            "from repro.core.sweeppool import SweepMetrics",
            "metrics = SweepMetrics()",
            "results = run_sweep('aes-aes', dma_design_space('quick')[:2],",
            "                    parallel=2, metrics=metrics)",
            "assert len(results) == 2 and metrics.evaluated == 2",
            "print('sweep-ok')",
        ])
        import repro
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [src_dir, env.get("PYTHONPATH")] if p)
        proc = subprocess.run(
            [sys.executable, "-"], input=script, text=True,
            capture_output=True, env=env, cwd=str(tmp_path), timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "sweep-ok" in proc.stdout

    def test_reimportable_main_uses_pool(self):
        # Under pytest, __main__ is the pytest entry point with a real
        # __spec__/__file__, so the guard must NOT disable the pool path.
        from repro.core.sweeppool import _spawn_can_reimport_main
        assert _spawn_can_reimport_main()

    def test_metrics_jobs_reflect_spawn_downgrade(self, monkeypatch):
        # Regression: metrics.jobs was recorded before the spawn-safety
        # fallback downgraded the run to inline, reporting parallelism
        # that never happened.
        import repro.core.sweeppool as sweeppool
        monkeypatch.setattr(sweeppool, "_spawn_can_reimport_main",
                            lambda: False)
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(2), jobs=4,
                                 mp_context="spawn", metrics=metrics)
        assert len(results) == 2
        assert metrics.jobs == 1  # effective, not requested
        assert metrics.evaluated == 2


class TestMetrics:
    def test_report_and_dict(self, tmp_path):
        metrics = SweepMetrics()
        run_sweep_pool(WORKLOAD, quick_designs(2), cache_dir=str(tmp_path),
                       metrics=metrics)
        d = metrics.as_dict()
        assert d["points"] == 2
        assert d["evaluated"] == 2
        assert d["wall_seconds"] > 0
        assert 0 < d["worker_utilization"] <= 1.0
        text = metrics.report()
        assert "cache hits" in text
        assert "worker util" in text

    def test_merge(self):
        a, b = SweepMetrics(), SweepMetrics()
        a.points, a.evaluated, a.point_seconds = 3, 3, [0.1, 0.2, 0.3]
        b.points, b.cache_hits = 2, 2
        a.merge(b)
        assert a.points == 5
        assert a.cache_hits == 2
        assert a.evaluated == 3


class TestCanonicalKeys:
    """Two clients describing the same point must hash identically."""

    def test_integral_floats_normalize(self):
        # JSON clients send 8.0 where Python code sends 8; the point
        # simulated is the same, so the key must be too.
        a = DesignPoint(lanes=8, partitions=4)
        b = DesignPoint(lanes=8.0, partitions=4.0)
        assert sweep_key(WORKLOAD, a) == sweep_key(WORKLOAD, b)

    def test_dma_ignores_cache_side_fields(self):
        # A DMA design never builds the cache, so cache-side knobs are
        # simulation-irrelevant (verified empirically against
        # run_design) and must not fragment the store.
        a = DesignPoint(lanes=4, partitions=4, mem_interface="dma")
        b = a.replace(cache_size_kb=32, cache_ports=4, cache_assoc=8,
                      cache_line=32, prefetcher="none")
        assert sweep_key(WORKLOAD, a) == sweep_key(WORKLOAD, b)

    def test_cache_ignores_dma_side_fields(self):
        a = DesignPoint(lanes=4, mem_interface="cache")
        b = a.replace(pipelined_dma=False, dma_triggered_compute=False,
                      double_buffer=True)
        assert sweep_key(WORKLOAD, a) == sweep_key(WORKLOAD, b)

    def test_cache_keeps_spad_ports(self):
        # DesignPoint.key() omits spad_ports for cache designs, but the
        # scratchpad still serves the compute side there — spad_ports
        # changes cache-design results, so it must stay a hash input.
        a = DesignPoint(lanes=4, mem_interface="cache")
        assert sweep_key(WORKLOAD, a) != sweep_key(
            WORKLOAD, a.replace(spad_ports=2))

    def test_relevant_fields_still_fragment(self):
        a = DesignPoint(lanes=4, partitions=4, mem_interface="dma")
        assert sweep_key(WORKLOAD, a) != sweep_key(
            WORKLOAD, a.replace(pipelined_dma=False))
        c = DesignPoint(mem_interface="cache")
        assert sweep_key(WORKLOAD, c) != sweep_key(
            WORKLOAD, c.replace(cache_line=32))

    def test_payload_insensitive_to_dict_order(self):
        import json
        payload = key_payload(WORKLOAD, DesignPoint(), SoCConfig())
        scrambled = json.loads(json.dumps(
            {k: payload[k] for k in reversed(list(payload))}))
        assert (json.dumps(payload, sort_keys=True)
                == json.dumps(scrambled, sort_keys=True))

    def test_equivalent_specs_share_cache_entries(self, tmp_path):
        # End to end: the non-canonical spelling must hit the canonical
        # spelling's cache entry, not re-simulate.
        canonical = [DesignPoint(lanes=4, partitions=4)]
        spelled = [DesignPoint(lanes=4.0, partitions=4,
                               cache_size_kb=64, cache_ports=4)]
        first = run_sweep_pool(WORKLOAD, canonical,
                               cache_dir=str(tmp_path))
        metrics = SweepMetrics()
        second = run_sweep_pool(WORKLOAD, spelled, cache_dir=str(tmp_path),
                                metrics=metrics)
        assert metrics.cache_hits == 1
        assert metrics.evaluated == 0
        assert results_to_json(first) == results_to_json(second)

    def test_sweep_id_uses_canonical_fields(self):
        from repro.core.sweeppool import sweep_id
        a = [DesignPoint(lanes=4, partitions=4)]
        b = [DesignPoint(lanes=4.0, partitions=4, cache_size_kb=64)]
        assert sweep_id(WORKLOAD, a) == sweep_id(WORKLOAD, b)
        assert sweep_id(WORKLOAD, a) != sweep_id(
            WORKLOAD, [DesignPoint(lanes=8, partitions=4)])


class TestCacheIndex:
    def _key(self, i):
        return f"{i:02x}" + "0" * 62

    def test_index_scans_existing_entries(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        for i in range(5):
            cache.put(self._key(i), i)
        fresh = SweepCache(str(tmp_path))  # index built lazily from disk
        assert fresh.index() == {self._key(i) for i in range(5)}

    def test_get_many_skips_unindexed_keys(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put(self._key(1), "one")
        got = cache.get_many([self._key(1), self._key(2)])
        assert got == {self._key(1): "one"}

    def test_get_many_respects_payload_guard(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put(self._key(1), "one", payload={"p": 1})
        got = cache.get_many([self._key(1)],
                             payloads={self._key(1): {"p": 2}})
        assert got == {}

    def test_put_updates_built_index(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        assert cache.index() == set()
        cache.put(self._key(7), 7)
        assert self._key(7) in cache.index()
        assert cache.get_many([self._key(7)]) == {self._key(7): 7}

    def test_refresh_picks_up_other_writers(self, tmp_path):
        reader = SweepCache(str(tmp_path))
        assert reader.index() == set()
        writer = SweepCache(str(tmp_path))
        writer.put(self._key(3), 3)
        assert reader.get_many([self._key(3)]) == {}  # stale index: miss
        reader.refresh_index()
        assert reader.get_many([self._key(3)]) == {self._key(3): 3}

    def test_unreadable_indexed_entry_drops_from_index(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put(self._key(1), 1)
        with open(cache._path(self._key(1)), "wb") as f:
            f.write(b"garbage")
        assert cache.get_many([self._key(1)]) == {}
        assert self._key(1) not in cache.index()

    def test_clear_resets_index(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put(self._key(1), 1)
        cache.clear()
        assert cache.index() == set()


class TestConcurrentWriters:
    def test_racing_writers_never_corrupt_the_store(self, tmp_path):
        # The service dispatcher and external sweeps share one store:
        # many processes hammering the same key must always leave a
        # readable entry (atomic temp-file + os.replace), never a torn
        # one.  fork context so the children inherit this test module.
        import multiprocessing

        key = "ab" + "0" * 62
        payload = {"p": 1}
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_hammer_cache,
                             args=(str(tmp_path), key, payload, n))
                 for n in range(4)]
        for p in procs:
            p.start()
        cache = SweepCache(str(tmp_path))
        observed = set()
        for _ in range(200):
            value = cache.get(key, payload)
            if value is not None:
                observed.add(value)
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        final = cache.get(key, payload)
        assert final is not None and final.startswith("writer-")
        assert all(v.startswith("writer-") for v in observed)
        stray = [f for _d, _s, fs in os.walk(str(tmp_path))
                 for f in fs if f.endswith(".tmp")]
        assert stray == []

    def test_pool_and_direct_writer_same_point(self, tmp_path):
        # A worker-pool sweep and a direct put racing on the same point:
        # whoever lands last must leave the canonical, readable result.
        designs = quick_designs(1)
        key = sweep_key(WORKLOAD, designs[0])
        payload = key_payload(WORKLOAD, designs[0])
        results = run_sweep_pool(WORKLOAD, designs,
                                 cache_dir=str(tmp_path))
        cache = SweepCache(str(tmp_path))
        cache.put(key, results[0], payload)  # idempotent overwrite
        again = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        assert results_to_json(again) == results_to_json(results)


def _hammer_cache(root, key, payload, n):
    cache = SweepCache(root)
    for i in range(50):
        cache.put(key, f"writer-{n}-{i}", payload)


class TestServicePlumbing:
    def test_write_manifest_false_skips_manifest(self, tmp_path):
        from repro.core.sweeppool import MANIFEST_DIR
        run_sweep_pool(WORKLOAD, quick_designs(2), cache_dir=str(tmp_path),
                       write_manifest=False)
        assert not os.path.exists(os.path.join(str(tmp_path),
                                               MANIFEST_DIR))
        # results still flushed through the cache
        metrics = SweepMetrics()
        run_sweep_pool(WORKLOAD, quick_designs(2), cache_dir=str(tmp_path),
                       metrics=metrics)
        assert metrics.cache_hits == 2

    def test_joins_counter_in_dict_report_and_merge(self):
        metrics = SweepMetrics()
        metrics.points, metrics.joins = 3, 3
        assert metrics.as_dict()["joins"] == 3
        assert "joins" in metrics.report()
        other = SweepMetrics()
        other.joins = 2
        assert metrics.merge(other).joins == 5

    def test_joins_mirrored_into_stats_registry(self):
        from repro.obs.stats import StatRegistry
        metrics = SweepMetrics()
        metrics.joins = 4
        registry = StatRegistry()
        metrics.reg_stats(registry)
        assert registry.value("sweep.joins") == 4


class TestBatchProbe:
    def test_large_sweep_uses_index_probe(self, tmp_path, monkeypatch):
        # Above the threshold the cache probe must go through get_many
        # (one directory scan), not per-point get.
        import repro.core.sweeppool as sweeppool
        monkeypatch.setattr(sweeppool, "_BATCH_PROBE_MIN", 2)
        designs = quick_designs(3)
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path))
        calls = []
        original = SweepCache.get_many

        def spy(self, keys, payloads=None):
            calls.append(len(list(keys)))
            return original(self, keys, payloads)

        monkeypatch.setattr(SweepCache, "get_many", spy)
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                                 metrics=metrics)
        assert calls == [3]
        assert metrics.cache_hits == 3
        serial = run_sweep(WORKLOAD, designs)
        assert results_to_json(results) == results_to_json(serial)
