"""Property-based tests for cache and ready-bit invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def build_cache(size=2048, line=64, assoc=2):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    cache = Cache(sim, clock, "c", size, line, assoc)
    domain.register(cache)
    return sim, cache


addresses = st.lists(st.integers(0, 8191).map(lambda a: a & ~3),
                     min_size=1, max_size=60)
rw = st.lists(st.booleans(), min_size=1, max_size=60)


@given(addresses)
@settings(max_examples=25, deadline=None)
def test_every_access_eventually_completes(addrs):
    sim, cache = build_cache()
    done = []
    pending = list(addrs)

    def issue():
        if not pending:
            return
        addr = pending.pop(0)
        status = cache.access(addr, 4, False, lambda: done.append(addr))
        if status == "blocked":
            pending.insert(0, addr)
            sim.schedule(10_000, issue)
        else:
            sim.schedule(0, issue)

    issue()
    sim.run()
    assert sorted(done) == sorted(addrs)


@given(addresses)
@settings(max_examples=25, deadline=None)
def test_capacity_never_exceeded(addrs):
    sim, cache = build_cache(size=1024, assoc=2)
    for addr in addrs:
        cache.access(addr, 4, False, lambda: None)
        sim.run()
        assert cache.resident_lines() <= 1024 // 64
        for s in cache._sets:
            assert len(s) <= cache.assoc


@given(addresses)
@settings(max_examples=25, deadline=None)
def test_repeat_access_hits(addrs):
    """Temporal locality: immediately re-reading an address always hits."""
    sim, cache = build_cache(size=8192, assoc=4)
    for addr in addrs[:10]:
        cache.access(addr, 4, False, lambda: None)
        sim.run()
        status = cache.access(addr, 4, False, lambda: None)
        assert status == "hit"
        sim.run()


@given(addresses, rw)
@settings(max_examples=25, deadline=None)
def test_stats_consistent(addrs, writes):
    sim, cache = build_cache()
    for addr, w in zip(addrs, writes):
        status = cache.access(addr, 4, w, lambda: None)
        sim.run()
        assert status in ("hit", "miss")
    assert cache.reads + cache.writes == min(len(addrs), len(writes))
    assert cache.hits + cache.misses + cache.merged == \
        cache.reads + cache.writes
    assert 0.0 <= cache.miss_rate() <= 1.0


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 64)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_ready_bits_monotonic(fills):
    """Once a byte is ready it stays ready; waiters fire exactly once."""
    bits = ReadyBits("a", 1024, granularity=64)
    fired = []
    for line in range(16):
        bits.wait(line * 64, lambda line=line: fired.append(line))
    ready_history = set()
    for line, size in fills:
        bits.set_range(line * 64, size)
        now_ready = {b for b in range(16) if bits.is_ready(b * 64)}
        assert ready_history <= now_ready
        ready_history = now_ready
    assert sorted(fired) == sorted(set(fired))  # no double fires
    assert set(fired) == ready_history
