"""Property-based tests for Pareto/EDP selection."""

from hypothesis import given, strategies as st

from repro.core.pareto import dominates, edp_optimal, pareto_frontier


class Point:
    def __init__(self, t, p):
        self.total_ticks = t
        self.power_mw = p
        self.edp = t * t * p


points = st.lists(
    st.builds(Point, st.integers(1, 10**6),
              st.floats(0.01, 100, allow_nan=False)),
    min_size=1, max_size=40)


@given(points)
def test_frontier_nonempty(pts):
    assert pareto_frontier(pts)


@given(points)
def test_frontier_points_not_dominated(pts):
    front = pareto_frontier(pts)
    for f in front:
        assert not any(dominates(p, f) for p in pts)


@given(points)
def test_all_points_dominated_or_equal_to_frontier(pts):
    front = pareto_frontier(pts)
    for p in pts:
        assert any(f.total_ticks <= p.total_ticks
                   and f.power_mw <= p.power_mw for f in front)


@given(points)
def test_frontier_strictly_decreasing_power(pts):
    front = pareto_frontier(pts)
    for a, b in zip(front, front[1:]):
        assert a.total_ticks <= b.total_ticks
        assert a.power_mw > b.power_mw


@given(points)
def test_frontier_invariant_under_duplication(pts):
    front1 = pareto_frontier(pts)
    front2 = pareto_frontier(pts + pts)
    assert [(f.total_ticks, f.power_mw) for f in front1] == \
        [(f.total_ticks, f.power_mw) for f in front2]


@given(points)
def test_edp_optimal_is_global_minimum(pts):
    best = edp_optimal(pts)
    assert all(best.edp <= p.edp for p in pts)
