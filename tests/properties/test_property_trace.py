"""Property-based tests for the trace builder and lane assignment."""

from hypothesis import given, settings, strategies as st

from repro.aladdin.ddg import DDDG
from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes, validate_assignment


@st.composite
def random_kernel(draw):
    """A random but well-formed parallel kernel."""
    n_iters = draw(st.integers(1, 12))
    ops_per_iter = draw(st.integers(1, 6))
    tb = TraceBuilder("random")
    size = n_iters * ops_per_iter + 1
    tb.array("a", size, 4, kind="input", init=[1.0] * size)
    tb.array("out", size, 4, kind="output")
    for i in range(n_iters):
        with tb.iteration(i):
            acc = tb.load("a", i)
            for k in range(ops_per_iter):
                choice = draw(st.sampled_from(["fadd", "fmul", "load"]))
                if choice == "load":
                    acc = tb.fadd(acc, tb.load("a", (i + k) % size))
                elif choice == "fadd":
                    acc = tb.fadd(acc, 1.0)
                else:
                    acc = tb.fmul(acc, 2.0)
            tb.store("out", i, acc)
    return tb


@given(random_kernel())
@settings(max_examples=30, deadline=None)
def test_traces_topologically_ordered(tb):
    for node, preds in enumerate(tb.deps):
        assert all(p < node for p in preds)


@given(random_kernel(), st.integers(1, 16))
@settings(max_examples=30, deadline=None)
def test_lane_assignment_always_valid(tb, lanes):
    validate_assignment(tb, assign_lanes(tb, lanes))


@given(random_kernel(), st.integers(1, 16))
@settings(max_examples=20, deadline=None)
def test_scheduler_completes_any_kernel(tb, lanes):
    """Work conservation: every well-formed trace finishes, whatever the
    lane count, and runs at least as long as its critical path."""
    from repro.aladdin.accelerator import Accelerator
    res = Accelerator(tb, lanes, partitions=max(1, lanes // 2)).run_isolated()
    assert res.cycles >= DDDG(tb).critical_path()


@given(random_kernel())
@settings(max_examples=15, deadline=None)
def test_more_lanes_never_slower(tb):
    from repro.aladdin.accelerator import Accelerator
    c2 = Accelerator(tb, 2, 2).run_isolated().cycles
    c8 = Accelerator(tb, 8, 8).run_isolated().cycles
    assert c8 <= c2


@given(random_kernel())
@settings(max_examples=15, deadline=None)
def test_histogram_counts_all_nodes(tb):
    assert sum(tb.op_histogram().values()) == tb.num_nodes
