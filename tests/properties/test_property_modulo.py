"""Property-based tests for modulo-scheduled loop pipelining.

The load-bearing equivalence: with deterministic scratchpad timing and
uniform rounds, forcing the initiation interval to one round's length
must reproduce barrier mode *bit-identically* — the II gate then opens
each round exactly when the barrier would have.  Random uniform kernels
(random op chains, optional loop-carried accumulator, random lane
counts) probe that equivalence, plus the basic sandwich
``off <= modulo(auto) <= barriers`` and the RecMII dependence bound.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.aladdin.accelerator import Accelerator
from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes

# Op-chain steps: (method name, latency is irrelevant here — variety is
# the point).  All take (value, constant).
OPS = ("fadd", "fmul", "add", "mul")

ops_chains = st.lists(st.sampled_from(OPS), min_size=1, max_size=4)
lanes_st = st.sampled_from((1, 2, 4))
iters_st = st.integers(min_value=2, max_value=12)


def build_kernel(num_iters, chain, carried):
    """A uniform per-iteration kernel: load -> op chain -> store, with an
    optional loop-carried accumulator threaded through the first op."""
    tb = TraceBuilder("prop")
    tb.array("a", num_iters, 4, kind="input",
             init=[float(i) for i in range(num_iters)])
    tb.array("out", num_iters, 4, kind="output")
    acc = None
    for i in range(num_iters):
        with tb.iteration(i):
            x = tb.load("a", i)
            if carried and acc is not None:
                x = tb.fadd(acc, x)
            for op in chain:
                x = getattr(tb, op)(x, 2.0)
            if carried:
                acc = x
            tb.store("out", i, x)
    return tb


@given(iters_st, lanes_st, ops_chains)
@settings(max_examples=40, deadline=None)
def test_ii_at_round_duration_is_bit_identical_to_barriers(
        num_iters, lanes, chain):
    # Restricted to carried=False: a loop-carried accumulator makes round
    # durations non-uniform (iteration 0 lacks the carried fadd), and the
    # II gate then legitimately opens some rounds *earlier* than their
    # barrier would — modulo gets faster, not identical.
    tb = build_kernel(num_iters, chain, carried=False)
    barrier = Accelerator(tb, lanes, 4).run_isolated()
    num_rounds = assign_lanes(tb, lanes).num_rounds
    assume(num_rounds > 1)
    assume(barrier.cycles % num_rounds == 0)  # uniform round duration
    round_cycles = barrier.cycles // num_rounds
    forced = Accelerator(tb, lanes, 4, pipelining="modulo",
                         ii=round_cycles).run_isolated()
    assert forced.ticks == barrier.ticks
    assert forced.scheduler.reservation_conflicts == \
        barrier.scheduler.reservation_conflicts == 0


@given(iters_st, lanes_st, ops_chains, st.booleans())
@settings(max_examples=25, deadline=None)
def test_auto_ii_sandwiched_between_off_and_barriers(
        num_iters, lanes, chain, carried):
    """Modulo gating can never beat free overlap nor lose to barriers:
    the gate only delays issue relative to "off", and a fully completed
    round always releases its successor (the barrier fallback), so an
    overestimated II cannot throttle below barrier behavior."""
    tb = build_kernel(num_iters, chain, carried)
    barrier = Accelerator(tb, lanes, 4).run_isolated()
    off = Accelerator(tb, lanes, 4, pipelining="off").run_isolated()
    modulo = Accelerator(tb, lanes, 4, pipelining="modulo").run_isolated()
    assert off.cycles <= modulo.cycles <= barrier.cycles


@given(iters_st, lanes_st, ops_chains)
@settings(max_examples=25, deadline=None)
def test_carried_chain_bounds_runtime_at_any_ii(num_iters, lanes, chain):
    """Even at II=1 the loop-carried accumulator serializes: runtime is
    at least the chain's dependence height, gates notwithstanding."""
    tb = build_kernel(num_iters, chain, carried=True)
    res = Accelerator(tb, lanes, 4, pipelining="modulo",
                      ii=1).run_isolated()
    # Each iteration after the first adds one fadd (latency 3) to the
    # carried chain.
    assert res.cycles >= (num_iters - 1) * 3
