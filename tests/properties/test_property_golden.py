"""Golden-snapshot determinism: the optimized hot paths change nothing.

The hot-path overhaul (flat scheduler arrays, fused scratchpad issue,
completion batching, memoized construction tables) is required to be a
pure performance change: every simulation statistic must be *bit
identical* to the unoptimized simulator.  ``golden_runs.json`` was
captured before the overhaul; these tests re-run all nine
(workload x design) pairs and compare canonical JSON bytes.

A legitimate modeling change that moves numbers must regenerate the
goldens (``PYTHONPATH=src python -m tests.properties._golden``) and say
why in the commit.
"""

import pytest

from tests.properties._golden import (
    DESIGNS,
    WORKLOADS,
    canonical,
    load_golden,
    run_design,
    snapshot,
)

GOLDEN = load_golden()


@pytest.mark.parametrize("design_key", sorted(DESIGNS))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_run_matches_golden_bytes(workload, design_key):
    key = f"{workload}/{design_key}"
    assert key in GOLDEN, f"missing golden entry {key}; regenerate goldens"
    result = run_design(workload, DESIGNS[design_key])
    current = canonical(snapshot(result))
    golden = canonical(GOLDEN[key])
    assert current == golden, (
        f"{key}: simulation stats diverged from the golden snapshot — "
        f"an optimization changed observable behavior"
    )


def test_golden_file_is_canonical():
    """The committed file itself is in canonical form (regenerated via
    the _golden module, not hand-edited)."""
    with open(__file__.replace("test_property_golden.py",
                               "golden_runs.json"), "rb") as fh:
        raw = fh.read()
    assert raw == canonical(GOLDEN) + b"\n"


def test_repeated_runs_are_deterministic():
    """Two in-process runs of the same pair are byte-identical (no state
    leaks through the memoized construction tables)."""
    design = DESIGNS["dma-default"]
    first = canonical(snapshot(run_design("fft-transpose", design)))
    second = canonical(snapshot(run_design("fft-transpose", design)))
    assert first == second
