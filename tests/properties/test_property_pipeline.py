"""Property-based tests for streaming accelerator pipelines.

Random chain shapes (depth 2-4, random handoff buffer geometry, both
handoff modes) must always complete with the checker's leak audit clean,
and the consumer must never read a chunk its producer has not committed —
the full/empty-bit ordering invariant, verified from the per-chunk tick
accounting every link records.
"""

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import AcceleratorPipeline

# Small, fast workloads: property runs simulate dozens of full chains.
POOL = ("aes-aes", "kmp", "viterbi")

chains = st.lists(st.sampled_from(POOL), min_size=2, max_size=4)
# Multiples of one cache line, from one line up to 8 KB; >= 2 lines so
# double buffering's two slots always fit.
buffers = st.integers(2, 128).map(lambda n: n * 64)
handoffs = st.sampled_from(("dma", "cache"))


@given(chains, buffers, handoffs, st.booleans())
@settings(max_examples=15, deadline=None)
def test_random_pipelines_complete_with_clean_audit(workloads, buffer_bytes,
                                                    handoff, double_buffer):
    """Any chain shape completes; check=True would raise on a leaked
    handoff buffer, parked consumer, or stalled producer."""
    pipe = AcceleratorPipeline(workloads, handoff=handoff,
                               buffer_bytes=buffer_bytes,
                               double_buffer=double_buffer, check=True)
    result = pipe.run()
    assert result.makespan_ticks > 0
    assert len(result.stage_results) == len(workloads)
    for link in pipe.links:
        assert not any(link.bits._ready), "committed chunk never drained"
        assert link.bits.pending_waiters() == 0
        assert link.bits.pending_empty_waiters() == 0


@given(chains, buffers, handoffs, st.booleans())
@settings(max_examples=15, deadline=None)
def test_consumer_never_reads_ahead_of_producer(workloads, buffer_bytes,
                                                handoff, double_buffer):
    """ReadyBits ordering: every chunk's consume started at or after the
    tick its producer committed it, on every link of every random shape."""
    pipe = AcceleratorPipeline(workloads, handoff=handoff,
                               buffer_bytes=buffer_bytes,
                               double_buffer=double_buffer, check=True)
    result = pipe.run()
    assert result.ordering_clean()
    for link in result.links:
        for j, (produced, started, consumed) in enumerate(zip(
                link["produced_ticks"], link["consume_start_ticks"],
                link["consumed_ticks"])):
            assert produced is not None, f"chunk {j} never committed"
            assert started >= produced
            assert consumed >= started


@given(chains, st.integers(1, 16).map(lambda n: n * 64))
@settings(max_examples=10, deadline=None)
def test_handoff_accounting_conserved(workloads, buffer_bytes):
    """Every link hands off exactly its chunk count, no matter how the
    buffer divides the linked window."""
    pipe = AcceleratorPipeline(workloads, buffer_bytes=buffer_bytes,
                               check=True)
    pipe.run()
    for link in pipe.links:
        assert link.handoffs == link.num_chunks
        assert link.num_chunks == -(-link.link_bytes // link.chunk_bytes)


@given(st.sampled_from(POOL), st.sampled_from(POOL), buffers)
@settings(max_examples=8, deadline=None)
def test_pipeline_is_deterministic(first, second, buffer_bytes):
    """Same shape, same ticks — chunked handoffs must not introduce any
    ordering nondeterminism."""
    runs = [
        AcceleratorPipeline([first, second],
                            buffer_bytes=buffer_bytes, check=True).run()
        for _ in range(2)
    ]
    assert runs[0].makespan_ticks == runs[1].makespan_ticks
    assert runs[0].links[0]["produced_ticks"] == \
        runs[1].links[0]["produced_ticks"]
