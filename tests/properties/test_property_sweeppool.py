"""Property: parallel + memoized sweeps are bit-identical to serial ones.

The acceptance bar for the sweep engine: for the ``quick`` density grid on
two workloads, ``run_sweep(..., parallel=N, cache_dir=...)`` must return
``RunResult``s whose full serialized form (every timing tick, energy pJ,
breakdown fraction, and stat counter) matches the serial path byte for
byte — first on a cold cache (results computed in worker processes), then
on a warm one (results loaded from disk, zero points evaluated).
"""

import pytest

from repro.core.export import results_to_json
from repro.core.sweep import cache_design_space, dma_design_space, run_sweep
from repro.core.sweeppool import SweepMetrics

WORKLOADS = ("aes-aes", "nw-nw")


def quick_grid():
    """A cross-interface slice of the quick grid (DMA plus cache points)."""
    return dma_design_space("quick") + cache_design_space("quick")[:3]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_parallel_cached_sweep_bit_identical_to_serial(workload, tmp_path):
    designs = quick_grid()
    serial = run_sweep(workload, designs)
    serial_json = results_to_json(serial)

    # Cold cache: every point simulated in a worker process.
    cold = SweepMetrics()
    parallel = run_sweep(workload, designs, parallel=2,
                         cache_dir=str(tmp_path), metrics=cold)
    assert cold.evaluated == len(designs)
    assert results_to_json(parallel) == serial_json

    # Warm cache: every point deserialized from disk, nothing evaluated.
    warm = SweepMetrics()
    cached = run_sweep(workload, designs, parallel=2,
                       cache_dir=str(tmp_path), metrics=warm)
    assert warm.evaluated == 0
    assert warm.cache_hits == len(designs)
    assert results_to_json(cached) == serial_json


def test_serial_cached_and_parallel_uncached_agree(tmp_path):
    """The two engine features are independent: cache-only and pool-only
    paths both reproduce the serial results exactly."""
    workload = WORKLOADS[0]
    designs = dma_design_space("quick")
    serial_json = results_to_json(run_sweep(workload, designs))
    cache_only = run_sweep(workload, designs, cache_dir=str(tmp_path))
    pool_only = run_sweep(workload, designs, parallel=2)
    assert results_to_json(cache_only) == serial_json
    assert results_to_json(pool_only) == serial_json
