"""Property-based tests for the interval algebra.

The runtime breakdowns of Figures 2 and 6 are computed entirely from this
algebra, so its invariants must hold for arbitrary interval sets.
"""

from hypothesis import given, strategies as st

from repro.sim.stats import (
    intersect,
    merge_intervals,
    subtract,
    total_covered,
)

interval = st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
    lambda t: (min(t), max(t) + 1))
intervals = st.lists(interval, max_size=20)


def is_canonical(ivs):
    return all(a < b for a, b in ivs) and all(
        ivs[i][1] < ivs[i + 1][0] for i in range(len(ivs) - 1))


@given(intervals)
def test_merge_produces_canonical_form(ivs):
    assert is_canonical(merge_intervals(ivs))


@given(intervals)
def test_merge_idempotent(ivs):
    merged = merge_intervals(ivs)
    assert merge_intervals(merged) == merged


@given(intervals)
def test_merge_preserves_coverage(ivs):
    covered = set()
    for a, b in ivs:
        covered.update(range(a, b))
    merged_covered = set()
    for a, b in merge_intervals(ivs):
        merged_covered.update(range(a, b))
    assert covered == merged_covered


@given(intervals, intervals)
def test_intersect_subset_of_both(a, b):
    inter = intersect(a, b)
    cov_a = total_covered(a)
    cov_b = total_covered(b)
    cov_i = total_covered(inter)
    assert cov_i <= min(cov_a, cov_b)


@given(intervals, intervals)
def test_intersect_commutative(a, b):
    assert intersect(a, b) == intersect(b, a)


@given(intervals, intervals)
def test_subtract_disjoint_from_subtrahend(a, b):
    assert intersect(subtract(a, b), b) == []


@given(intervals, intervals)
def test_partition_identity(a, b):
    """|a| = |a - b| + |a intersect b| — the invariant that makes the
    flush/DMA/compute cycle classes sum to total runtime."""
    assert total_covered(a) == (total_covered(subtract(a, b))
                                + total_covered(intersect(a, b)))


@given(intervals, intervals)
def test_intersect_with_subtract_covers_a(a, b):
    lhs = merge_intervals(subtract(a, b) + intersect(a, b))
    assert lhs == merge_intervals(a)
