"""Property-based tests for the DMA engine."""

from hypothesis import given, settings, strategies as st

from repro.dma.descriptor import DMADescriptor
from repro.dma.engine import DMAEngine
from repro.memory.bus import SystemBus
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def make_engine(width_bits=32, outstanding=4):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, width_bits, downstream=dram)
    return sim, DMAEngine(sim, clock, bus, max_outstanding=outstanding), bus


descriptor_sets = st.lists(
    st.tuples(st.integers(1, 3000),          # size
              st.booleans()),                # direction
    min_size=1, max_size=6)


@given(descriptor_sets)
@settings(max_examples=30, deadline=None)
def test_byte_conservation(specs):
    """Every byte described is moved exactly once."""
    sim, engine, bus = make_engine()
    descs = []
    addr = 0x1000
    for size, to_accel in specs:
        descs.append(DMADescriptor(addr, "a", 0, size, to_accel))
        addr += 4096
    done = []
    engine.enqueue(descs, on_done=lambda: done.append(True))
    sim.run()
    assert done == [True]
    assert engine.bytes_moved == sum(size for size, _d in specs)
    assert bus.bytes_transferred == engine.bytes_moved


@given(descriptor_sets, st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_outstanding_depth_never_changes_totals(specs, outstanding):
    """Pipelining depth affects timing, never the amount of data moved."""
    totals = []
    for depth in (1, outstanding):
        sim, engine, _bus = make_engine(outstanding=depth)
        descs = [DMADescriptor(0x1000 + i * 4096, "a", 0, size, to_accel)
                 for i, (size, to_accel) in enumerate(specs)]
        engine.enqueue(descs)
        sim.run()
        totals.append(engine.bytes_moved)
    assert totals[0] == totals[1]


@given(st.integers(64, 4096))
@settings(max_examples=20, deadline=None)
def test_ready_bits_fully_set_after_load(size):
    sim, engine, _bus = make_engine()
    bits = ReadyBits("a", size, granularity=64)
    engine.ready_bits = {"a": bits}
    engine.enqueue([DMADescriptor(0, "a", 0, size, to_accel=True)])
    sim.run()
    assert bits.all_ready()


@given(st.lists(st.integers(100, 2000), min_size=2, max_size=5))
@settings(max_examples=20, deadline=None)
def test_transactions_complete_in_fifo_order(sizes):
    sim, engine, _bus = make_engine()
    order = []
    for i, size in enumerate(sizes):
        engine.enqueue([DMADescriptor(i * 8192, "a", 0, size, True)],
                       on_done=lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(len(sizes)))


@given(st.integers(65, 4096), st.sampled_from([32, 64]))
@settings(max_examples=25, deadline=None)
def test_transfer_time_bounded_by_bus_bandwidth(size, width):
    """The engine can never beat the bus: duration >= beats * period."""
    sim, engine, _bus = make_engine(width_bits=width)
    done = []
    engine.enqueue([DMADescriptor(0, "a", 0, size, True)],
                   on_done=lambda: done.append(sim.now))
    sim.run()
    min_ticks = (size * 8 // width) * 10_000
    assert done[0] >= min_ticks
