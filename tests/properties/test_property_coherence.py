"""Property test: random coherent traffic never violates MOESI invariants.

Drives 2–3 caches of one snooping domain with arbitrary interleavings of
reads, writes, and flushes — including concurrent same-line misses, which
exercise the domain's fetch serialization — with the invariant checker
attached.  Any reachable state with two owners, a stale SHARED copy
beside a MODIFIED line, or a clean-line writeback raises
:class:`~repro.errors.InvariantError` and fails the test.
"""

from hypothesis import given, settings, strategies as st

from repro.check.invariants import MOESIChecker
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.dram import DRAM
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator

NUM_LINES = 8
LINE = 64

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),      # cache index
        st.sampled_from(["read", "write", "flush"]),
        st.integers(min_value=0, max_value=NUM_LINES - 1),
        st.booleans(),                               # drain queue after op
    ),
    min_size=1, max_size=40,
)


def build_domain(num_caches):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    caches = [Cache(sim, clock, f"c{i}", 4096, LINE, 4)
              for i in range(num_caches)]
    for cache in caches:
        domain.register(cache)
    checker = MOESIChecker(domain)
    domain.attach_checker(checker)
    return sim, domain, caches, checker


@settings(max_examples=25, deadline=None)
@given(ops=ops, num_caches=st.integers(min_value=2, max_value=3))
def test_random_interleavings_respect_moesi(ops, num_caches):
    sim, domain, caches, checker = build_domain(num_caches)
    for idx, op, line, drain in ops:
        cache = caches[idx % num_caches]
        addr = line * LINE
        if op == "read":
            cache.access(addr, 4, False, lambda: None)
        elif op == "write":
            cache.access(addr, 4, True, lambda: None)
        else:
            cache.flush_line(addr)
        if drain:
            sim.run()
    sim.run()
    # Every install and writeback was validated live; re-validate the
    # final global state line by line for good measure.
    for line in range(NUM_LINES):
        checker.check_line(line * LINE)
    assert checker.violations == 0
    # Final states must be globally coherent: at most one owner per line.
    for line in range(NUM_LINES):
        states = [c.peek_state(line * LINE) for c in caches]
        owners = [s for s in states
                  if s in (LineState.MODIFIED, LineState.EXCLUSIVE)]
        assert len(owners) <= 1
