"""Golden-run snapshot machinery for the determinism property suite.

A *snapshot* is every number a simulation produces — total ticks, cycle
breakdown, energy, power, EDP, area, and the full ``RunResult.stats``
dict — serialized to canonical JSON.  The committed ``golden_runs.json``
was captured from the unoptimized (pre hot-path overhaul) simulator;
``test_property_golden.py`` asserts the optimized kernel / scheduler /
cache paths reproduce it byte-for-byte.

Regenerate (only when a *modeling* change legitimately moves the numbers):

    PYTHONPATH=src python -m tests.properties._golden
"""

import json
import os

from repro.core.config import DesignPoint
from repro.core.soc import run_design

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_runs.json")

WORKLOADS = ("gemm-ncubed", "stencil-stencil2d", "fft-transpose")

DESIGNS = {
    "dma-default": DesignPoint(lanes=4, partitions=4, mem_interface="dma"),
    "dma-bulk-8x2": DesignPoint(lanes=8, partitions=2, mem_interface="dma",
                                pipelined_dma=False,
                                dma_triggered_compute=False),
    "cache-4k-2p": DesignPoint(lanes=4, partitions=4, mem_interface="cache",
                               cache_size_kb=4, cache_ports=2,
                               cache_assoc=4, prefetcher="stride"),
}


def snapshot(result):
    """Every externally visible number of one run, JSON-serializable."""
    return {
        "total_ticks": result.total_ticks,
        "accel_cycles": result.accel_cycles,
        "breakdown": dict(result.breakdown),
        "energy_pj": result.energy_pj,
        "power_mw": result.power_mw,
        "edp": result.edp,
        "area_mm2": result.area_mm2,
        "stats": {k: v for k, v in sorted(result.stats.items())},
    }


def canonical(obj):
    """Canonical JSON bytes — byte-identical iff the numbers are."""
    return json.dumps(obj, sort_keys=True, indent=1).encode()


def capture_all():
    """Run every (workload, design) pair and snapshot it."""
    runs = {}
    for workload in WORKLOADS:
        for key, design in DESIGNS.items():
            result = run_design(workload, design)
            runs[f"{workload}/{key}"] = snapshot(result)
    return runs


def load_golden():
    with open(GOLDEN_PATH, "rb") as fh:
        return json.load(fh)


def main():
    runs = capture_all()
    with open(GOLDEN_PATH, "wb") as fh:
        fh.write(canonical(runs))
        fh.write(b"\n")
    print(f"wrote {len(runs)} golden runs to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
