"""Deadlock watchdog (repro.check.watchdog)."""

import pytest

from repro.check import Checker, diagnose_platform
from repro.core.config import DesignPoint
from repro.core.soc import SoC
from repro.errors import DeadlockError, SimulationError


def small_dma(lanes=2):
    return DesignPoint(lanes=lanes, partitions=lanes)


def test_healthy_platform_diagnoses_done():
    soc = SoC("aes-aes", small_dma(), check=True)
    soc.run()
    report = diagnose_platform(soc.platform)
    assert report["socs"][0]["flow_done"]
    assert "every offload flow reports done" in report["summary"]


class TestDeadlockDiagnosis:
    def _wedge_dma(self, soc):
        """Reintroduce the zero-burst DMA bug: a transaction with no
        bursts never completes, wedging the channel (the shipped engine
        completes it right after setup — see DMAEngine._pump)."""
        dma = soc.dma
        original = dma._pump

        def buggy_pump(txn):
            if not txn.bursts:
                return  # pre-fix behavior: nothing in flight, no finish
            original(txn)

        dma._pump = buggy_pump
        dma.enqueue([], label="empty-chain")

    def test_wedged_dma_raises_structured_deadlock(self):
        soc = SoC("gemm-ncubed", small_dma(), check=True)
        self._wedge_dma(soc)
        with pytest.raises(DeadlockError) as exc:
            soc.run()
        report = exc.value.report
        assert report["tick"] == soc.platform.sim.now
        diag = report["socs"][0]
        assert diag["workload"] == "gemm-ncubed"
        assert not diag["flow_done"]
        dma = diag["dma"]
        assert not dma["idle"]
        assert dma["active"]["total_bursts"] == 0
        assert dma["queued_transactions"] >= 1

    def test_summary_names_the_wedged_channel(self):
        soc = SoC("gemm-ncubed", small_dma(), check=True)
        self._wedge_dma(soc)
        with pytest.raises(DeadlockError) as exc:
            soc.run()
        message = str(exc.value)
        assert "deadlock diagnosis:" in message
        assert "accel0 (gemm-ncubed)" in message
        assert "DMA wedged mid-transaction (0/0 bursts" in message

    def test_deadlock_error_is_a_simulation_error(self):
        soc = SoC("gemm-ncubed", small_dma(), check=True)
        self._wedge_dma(soc)
        with pytest.raises(SimulationError, match="simulation deadlocked"):
            soc.run()

    def test_unchecked_deadlock_stays_plain(self):
        soc = SoC("gemm-ncubed", small_dma(), check=False)
        self._wedge_dma(soc)
        with pytest.raises(SimulationError) as exc:
            soc.run()
        assert not isinstance(exc.value, DeadlockError)
        assert "deadlock diagnosis" not in str(exc.value)

    def test_stalled_lanes_reported(self):
        """Swallowing the input DMA leaves triggered compute parked on
        full/empty bits; the diagnosis must say which array stalled."""
        soc = SoC("gemm-ncubed", small_dma(), check=True)
        soc.dma.enqueue = lambda *a, **k: None
        with pytest.raises(DeadlockError) as exc:
            soc.run()
        diag = exc.value.report["socs"][0]
        assert not diag["flow_done"]
        summary = exc.value.report["summary"]
        assert "accel0 (gemm-ncubed)" in summary


class TestCheckerRegistersDiagnoser:
    def test_checker_attach_installs_diagnoser(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        assert soc.platform.sim._diagnosers
        soc.run()
        assert checker.last_audit["clean"]
