"""End-of-run leak audits (repro.check.audit) and the Checker facade."""

import json

import pytest

from repro.check import Checker, audit_platform, enabled_from_env, \
    resolve_check
from repro.core.config import DesignPoint
from repro.core.soc import Platform, SoC, run_design
from repro.errors import LeakError, SimulationError


def small_dma(lanes=2):
    return DesignPoint(lanes=lanes, partitions=lanes)


class TestCleanRuns:
    def test_dma_run_audits_clean(self):
        checker = Checker()
        result = run_design("aes-aes", small_dma(), check=checker)
        assert result.total_ticks > 0
        assert checker.audits == 1
        assert checker.last_audit["clean"]
        assert checker.last_audit["components_audited"] >= 8
        assert checker.invariant_checks > 0
        assert checker.violations == 0

    def test_cache_run_audits_clean(self):
        checker = Checker()
        design = DesignPoint(lanes=2, mem_interface="cache",
                             cache_size_kb=4)
        run_design("aes-aes", design, check=checker)
        assert checker.last_audit["clean"]
        # Cache flow exercises the accelerator-side MSHR/TLB audits too.
        components = checker.last_audit["components_audited"]
        assert components >= 9

    def test_checker_accumulates_across_runs(self):
        checker = Checker()
        run_design("aes-aes", small_dma(), check=checker)
        first = checker.invariant_checks
        run_design("kmp", small_dma(), check=checker)
        assert checker.audits == 2
        assert checker.invariant_checks > first

    def test_audit_platform_shape(self):
        soc = SoC("aes-aes", small_dma(), check=True)
        soc.run()
        report = audit_platform(soc.platform)
        assert report["clean"]
        assert report["leaks"] == []
        assert report["tick"] == soc.platform.sim.now


class TestLeakDetection:
    def test_leaked_mshr_entry_raises(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.platform.cpu_cache.mshrs.allocate(0x4000)
        with pytest.raises(LeakError, match="mshr_leak") as exc:
            checker.audit()
        leaks = exc.value.leaks
        assert leaks[0]["component"] == "soc.cpu_cache"
        assert "0x4000" in leaks[0]["detail"]

    def test_pending_ready_bit_waiter_raises(self):
        checker = Checker()
        soc = SoC("gemm-ncubed", small_dma(), check=checker)
        soc.run()
        bits = next(iter(soc.ready_bits.values()))
        bits._waiters[0] = [lambda: None]
        with pytest.raises(LeakError, match="pending_waiters"):
            checker.audit()

    def test_pending_domain_fetch_raises(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.platform.domain._pending[0x100] = []
        with pytest.raises(LeakError, match="pending_fetches"):
            checker.audit()

    def test_unattached_checker_rejects_audit(self):
        with pytest.raises(LeakError, match="never attached"):
            Checker().audit()


class TestSchedulerQueueAudit:
    """The scheduler audit inspects the actual per-lane ready queues and
    the modulo gate state, not just the ``_num_ready`` counter."""

    def test_stranded_ready_node_is_a_leak(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.scheduler._ready[0].append(0)
        soc.scheduler._num_ready += 1
        with pytest.raises(LeakError, match="nodes_ready_unissued"):
            checker.audit()

    def test_queue_leak_found_without_counter(self):
        """Regression: the audit used to read only ``_num_ready`` — a
        node stranded in a lane queue while the counter reads 0 (the
        wedged-pipelined-schedule shape) went unreported."""
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.scheduler._ready[0].append(0)  # counter left at 0
        with pytest.raises(LeakError) as exc:
            checker.audit()
        kinds = {leak["kind"] for leak in exc.value.leaks}
        assert "nodes_ready_unissued" in kinds
        assert "ready_counter_drift" in kinds

    def test_counter_drift_alone_is_a_leak(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.scheduler._num_ready = 3  # queues are empty
        with pytest.raises(LeakError, match="ready_counter_drift"):
            checker.audit()

    def test_parked_node_is_a_leak(self):
        checker = Checker()
        soc = SoC("aes-aes", small_dma(), check=checker)
        soc.run()
        soc.scheduler._round_parked[1] = [0]
        with pytest.raises(LeakError, match="nodes_parked"):
            checker.audit()

    def test_unopened_ii_gate_is_a_leak(self):
        checker = Checker()
        design = small_dma(lanes=2).replace(pipelining="modulo")
        soc = SoC("aes-aes", design, check=checker)
        soc.run()
        sched = soc.scheduler
        if sched._round_started is None:
            pytest.skip("workload degenerated to a single round")
        sched.done = False  # forge a wedged run
        sched._round_started[-1] = False
        with pytest.raises(LeakError) as exc:
            checker.audit()
        kinds = {leak["kind"] for leak in exc.value.leaks}
        assert "ii_gates_unopened" in kinds

    def test_clean_modulo_run_audits_clean(self):
        checker = Checker()
        design = small_dma(lanes=2).replace(pipelining="modulo")
        result = run_design("aes-aes", design, check=checker)
        assert result.total_ticks > 0
        assert checker.last_audit["clean"]


class TestResolveAndEnv:
    def test_resolve_passthrough_and_bool(self):
        checker = Checker()
        assert resolve_check(checker) is checker
        assert isinstance(resolve_check(True), Checker)
        assert resolve_check(False) is None

    def test_resolve_none_honors_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert resolve_check(None) is None
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert isinstance(resolve_check(None), Checker)

    def test_env_falsy_spellings(self):
        for value in ("", "0", "false", "off", "no", "False", " OFF "):
            assert not enabled_from_env({"REPRO_CHECK": value})
        assert enabled_from_env({"REPRO_CHECK": "1"})
        assert enabled_from_env({"REPRO_CHECK": "yes"})
        assert not enabled_from_env({})

    def test_platform_rejects_per_soc_check(self):
        plat = Platform()
        with pytest.raises(SimulationError, match="shared Platform"):
            SoC("aes-aes", small_dma(), platform=plat, check=True)


class TestHealthReport:
    def test_report_fields(self):
        checker = Checker()
        run_design("aes-aes", small_dma(), check=checker)
        report = checker.health_report()
        assert report["enabled"]
        assert report["audits"] == 1
        assert report["violations"] == 0
        assert report["audit"]["clean"]

    def test_dump_json(self, tmp_path):
        checker = Checker()
        run_design("aes-aes", small_dma(), check=checker)
        path = tmp_path / "health.json"
        checker.dump_json(path)
        doc = json.loads(path.read_text())
        assert doc["enabled"] is True
        assert doc["invariant_checks"] > 0
        assert doc["audit"]["leaks"] == []

    def test_reg_stats_exposed(self):
        from repro.obs.stats import StatRegistry
        checker = Checker()
        registry = StatRegistry()
        run_design("aes-aes", small_dma(), check=checker,
                   registry=registry)
        doc = registry.to_json()
        assert doc["check.invariant_checks"] > 0
        assert doc["check.audits"] == 1
        assert doc["check.violations"] == 0


class TestHandoffLinkAudit:
    """Pipeline handoff buffers join the leak audit."""

    def _pipe(self, **kwargs):
        from repro.core.pipeline import AcceleratorPipeline
        kwargs.setdefault("buffer_bytes", 512)
        return AcceleratorPipeline(["aes-aes", "kmp"], check=False,
                                   **kwargs)

    def test_clean_pipeline_audits_clean(self):
        pipe = self._pipe()
        pipe.run()
        report = audit_platform(pipe.platform)
        assert report["clean"]
        # The link was walked as its own component.
        assert report["components_audited"] >= 15

    def test_unconsumed_chunk_is_a_leak(self):
        pipe = self._pipe()
        pipe.run()
        link = pipe.links[0]
        link.bits.set_range(0, link.chunk_bytes)  # forge leftover data
        report = audit_platform(pipe.platform)
        assert not report["clean"]
        kinds = {leak["kind"] for leak in report["leaks"]}
        assert "unconsumed_handoff_data" in kinds

    def test_parked_consumer_is_a_leak(self):
        pipe = self._pipe()
        pipe.run()
        link = pipe.links[0]
        link.bits.wait_range(0, link.chunk_bytes, lambda: None)
        report = audit_platform(pipe.platform)
        kinds = {leak["kind"] for leak in report["leaks"]}
        assert "consumer_parked" in kinds

    def test_stalled_producer_is_a_leak(self):
        pipe = self._pipe()
        pipe.run()
        link = pipe.links[0]
        link.bits.set_range(0, link.chunk_bytes)
        link.bits.wait_empty_range(0, link.chunk_bytes, lambda: None)
        report = audit_platform(pipe.platform)
        kinds = {leak["kind"] for leak in report["leaks"]}
        assert "producer_stalled" in kinds

    def test_open_stall_interval_is_a_leak(self):
        pipe = self._pipe()
        pipe.run()
        pipe.links[0].producer_stall.begin(pipe.platform.sim.now)
        report = audit_platform(pipe.platform)
        kinds = {leak["kind"] for leak in report["leaks"]}
        assert "open_busy_interval" in kinds

    def test_checker_raises_on_link_leak(self):
        """A consumer that never drains the handoff flags fails the
        checked run instead of reporting optimistic numbers.  Cache
        handoff: the drain is the consumer's consume_all at its fence."""
        from repro.check import Checker
        checker = Checker()
        pipe = self._pipe(handoff="cache")
        # Swap in a real checker post-construction so run() audits.
        pipe.platform.checker = checker
        pipe.links[0].consume_all = lambda: None  # "forgets" to drain
        with pytest.raises(LeakError):
            pipe.run()
