"""MOESI invariant checker (repro.check.invariants)."""

import pytest

from repro.check.invariants import MOESIChecker
from repro.errors import InvariantError
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.dram import DRAM
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def make_checked_pair():
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    a = Cache(sim, clock, "a", 4096, 64, 4)
    b = Cache(sim, clock, "b", 4096, 64, 4)
    domain.register(a)
    domain.register(b)
    checker = MOESIChecker(domain)
    domain.attach_checker(checker)
    return sim, domain, a, b, checker


class TestViolations:
    def test_two_modified_copies_raise(self):
        _sim, _domain, a, b, checker = make_checked_pair()
        a.preload(0x100, 64)  # MODIFIED in a
        with pytest.raises(InvariantError, match="multiple_owners"):
            b.preload(0x100, 64)
        assert checker.violations == 1

    def test_stale_shared_beside_modified(self):
        _sim, _domain, a, b, _checker = make_checked_pair()
        a.preload(0x100, 64, state=LineState.MODIFIED)
        with pytest.raises(InvariantError,
                           match="stale_shared_beside_modified"):
            b.preload(0x100, 64, state=LineState.SHARED)

    def test_owner_not_exclusive(self):
        _sim, _domain, a, b, _checker = make_checked_pair()
        a.preload(0x100, 64, state=LineState.EXCLUSIVE)
        with pytest.raises(InvariantError, match="owner_not_exclusive"):
            b.preload(0x100, 64, state=LineState.SHARED)

    def test_multiple_owned(self):
        _sim, _domain, a, b, _checker = make_checked_pair()
        a.preload(0x100, 64, state=LineState.OWNED)
        with pytest.raises(InvariantError, match="multiple_owned"):
            b.preload(0x100, 64, state=LineState.OWNED)

    def test_owned_may_coexist_with_shared(self):
        _sim, _domain, a, b, checker = make_checked_pair()
        a.preload(0x100, 64, state=LineState.OWNED)
        b.preload(0x100, 64, state=LineState.SHARED)
        assert checker.violations == 0

    def test_message_names_culprits(self):
        _sim, _domain, a, b, _checker = make_checked_pair()
        a.preload(0x100, 64)
        with pytest.raises(InvariantError, match="a=M.*b=M|0x100"):
            b.preload(0x100, 64)


class TestWritebackCheck:
    def test_writeback_from_clean_state_raises(self):
        _sim, domain, a, _b, checker = make_checked_pair()
        with pytest.raises(InvariantError,
                           match="writeback_from_clean_state"):
            domain.writeback(a, 0x100, LineState.SHARED)
        assert checker.violations == 1

    def test_writeback_from_dirty_states_allowed(self):
        sim, domain, a, _b, checker = make_checked_pair()
        domain.writeback(a, 0x100, LineState.MODIFIED)
        domain.writeback(a, 0x140, LineState.OWNED)
        sim.run()
        assert checker.writeback_checks == 2
        assert checker.violations == 0

    def test_unknown_state_skipped(self):
        sim, domain, a, _b, checker = make_checked_pair()
        domain.writeback(a, 0x100)  # legacy caller, state unknown
        sim.run()
        assert checker.writeback_checks == 0
        assert checker.violations == 0


class TestCleanTraffic:
    def test_normal_coherent_traffic_validates_clean(self):
        sim, _domain, a, b, checker = make_checked_pair()
        b.preload(0x100, 64)
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        a.access(0x200, 4, True, lambda: None)
        sim.run()
        b.access(0x200, 4, False, lambda: None)
        sim.run()
        assert checker.checks > 0
        assert checker.violations == 0

    def test_checker_does_not_perturb_timing(self):
        def run_one(checked):
            sim = Simulator()
            clock = ClockDomain(100)
            dram = DRAM(sim)
            bus = SystemBus(sim, clock, 32, downstream=dram)
            domain = CoherenceDomain(sim, bus)
            a = Cache(sim, clock, "a", 4096, 64, 4)
            b = Cache(sim, clock, "b", 4096, 64, 4)
            domain.register(a)
            domain.register(b)
            if checked:
                domain.attach_checker(MOESIChecker(domain))
            b.preload(0x100, 64)
            done = []
            a.access(0x100, 4, False, lambda: done.append(sim.now))
            a.access(0x200, 4, True, lambda: done.append(sim.now))
            sim.run()
            return done

        assert run_one(False) == run_one(True)

    def test_check_line_on_demand(self):
        _sim, _domain, a, b, checker = make_checked_pair()
        a.preload(0x100, 64)
        # Bypass the hook to corrupt state, then re-validate on demand.
        b.domain = None
        b._checker = None
        b.preload(0x100, 64)
        with pytest.raises(InvariantError):
            checker.check_line(0x100)
