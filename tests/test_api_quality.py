"""Public-API quality gates: docstrings and import hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro", "repro.units", "repro.errors", "repro.cli",
    "repro.sim.kernel", "repro.sim.clock", "repro.sim.ports",
    "repro.sim.stats",
    "repro.memory.bus", "repro.memory.dram", "repro.memory.sram",
    "repro.memory.cache", "repro.memory.coherence", "repro.memory.mshr",
    "repro.memory.prefetch", "repro.memory.tlb", "repro.memory.fullempty",
    "repro.memory.traffic",
    "repro.dma.descriptor", "repro.dma.engine", "repro.cpu.driver",
    "repro.aladdin.ir", "repro.aladdin.trace", "repro.aladdin.ddg",
    "repro.aladdin.transforms", "repro.aladdin.scheduler",
    "repro.aladdin.power", "repro.aladdin.area",
    "repro.aladdin.accelerator",
    "repro.core.config", "repro.core.soc", "repro.core.multi",
    "repro.core.metrics", "repro.core.sweep", "repro.core.pareto",
    "repro.core.scenarios", "repro.core.analytic", "repro.core.validation",
    "repro.core.kiviat", "repro.core.figures", "repro.core.reporting",
    "repro.core.export",
    "repro.workloads.registry",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export
        if not inspect.getdoc(obj):
            undocumented.append(name)
        elif inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}")


def test_every_workload_module_registers_exactly_one_kernel():
    import repro.workloads as w
    names = w.workload_names()
    assert len(names) == len(set(names))
    pkg = importlib.import_module("repro.workloads")
    kernel_modules = [m.name for m in pkgutil.iter_modules(pkg.__path__)
                      if m.name not in ("registry",)]
    assert len(kernel_modules) == len(names)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
