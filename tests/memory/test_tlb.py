"""Accelerator TLB: translation, LRU, walk coalescing."""

import pytest

from repro.memory.tlb import AcceleratorTLB
from repro.sim.kernel import Simulator
from repro.units import ns_to_ticks

OFFSET = 0x1000_0000


def make_tlb(entries=8, miss_ns=200.0):
    sim = Simulator()
    return sim, AcceleratorTLB(sim, entries=entries, miss_latency_ns=miss_ns)


class TestTranslation:
    def test_miss_then_hit(self):
        sim, tlb = make_tlb()
        results = []
        hit = tlb.translate(0x2000, OFFSET, results.append)
        assert not hit
        sim.run()
        assert results == [0x2000 + OFFSET]
        hit = tlb.translate(0x2004, OFFSET, results.append)
        assert hit
        assert results[-1] == 0x2004 + OFFSET

    def test_offset_preserved_within_page(self):
        sim, tlb = make_tlb()
        results = []
        tlb.translate(0x2ABC, OFFSET, results.append)
        sim.run()
        assert results[0] % 4096 == 0xABC

    def test_miss_pays_walk_latency(self):
        sim, tlb = make_tlb(miss_ns=200.0)
        times = []
        tlb.translate(0x0, OFFSET, lambda p: times.append(sim.now))
        sim.run()
        assert times[0] == ns_to_ticks(200.0)

    def test_hit_is_synchronous(self):
        sim, tlb = make_tlb()
        tlb.translate(0x0, OFFSET, lambda p: None)
        sim.run()
        called = []
        assert tlb.translate(0x4, OFFSET, called.append)
        assert called  # callback fired inside translate()


class TestWalkCoalescing:
    def test_concurrent_misses_same_page_one_walk(self):
        sim, tlb = make_tlb()
        done = []
        tlb.translate(0x0, OFFSET, lambda p: done.append(sim.now))
        tlb.translate(0x8, OFFSET, lambda p: done.append(sim.now))
        tlb.translate(0x10, OFFSET, lambda p: done.append(sim.now))
        sim.run()
        assert tlb.walks == 1
        assert done == [ns_to_ticks(200.0)] * 3

    def test_distinct_pages_serialize_on_walker(self):
        sim, tlb = make_tlb()
        done = []
        tlb.translate(0x0000, OFFSET, lambda p: done.append(sim.now))
        tlb.translate(0x1000, OFFSET, lambda p: done.append(sim.now))
        sim.run()
        assert tlb.walks == 2
        assert done == [ns_to_ticks(200.0), ns_to_ticks(400.0)]


class TestLRU:
    def test_capacity_eviction(self):
        sim, tlb = make_tlb(entries=2)
        for page in range(3):
            tlb.translate(page * 4096, OFFSET, lambda p: None)
            sim.run()
        # Page 0 was evicted; page 2 and 1 remain.
        assert not tlb.translate(0x0, OFFSET, lambda p: None)
        sim.run()

    def test_touch_refreshes_lru(self):
        sim, tlb = make_tlb(entries=2)
        tlb.translate(0 * 4096, OFFSET, lambda p: None)
        sim.run()
        tlb.translate(1 * 4096, OFFSET, lambda p: None)
        sim.run()
        tlb.translate(0, OFFSET, lambda p: None)  # hit: refresh page 0
        tlb.translate(2 * 4096, OFFSET, lambda p: None)  # evicts page 1
        sim.run()
        assert tlb.translate(0, OFFSET, lambda p: None)  # still resident

    def test_refill_of_resident_page_refreshes_lru(self):
        """Regression: a walk completing for an already-resident vpn must
        move it to the MRU position, not leave it at its stale LRU slot
        (and must not evict anything)."""
        sim, tlb = make_tlb(entries=2)
        tlb.translate(0 * 4096, OFFSET, lambda p: None)
        sim.run()
        tlb.translate(1 * 4096, OFFSET, lambda p: None)
        sim.run()
        # Page 0 is now LRU.  Deliver a refill for it directly, as a walk
        # racing with residency would.
        tlb._pending[0] = []
        tlb._finish_walk(0, OFFSET // 4096)
        tlb.evictions = 0
        # Insert page 2: the victim must be page 1, not the refreshed page 0.
        tlb.translate(2 * 4096, OFFSET, lambda p: None)
        sim.run()
        assert tlb.evictions == 1
        assert tlb.translate(0, OFFSET, lambda p: None)      # hit
        assert not tlb.translate(1 * 4096, OFFSET, lambda p: None)  # evicted
        sim.run()

    def test_refill_of_resident_page_never_evicts(self):
        sim, tlb = make_tlb(entries=2)
        tlb.translate(0 * 4096, OFFSET, lambda p: None)
        sim.run()
        tlb.translate(1 * 4096, OFFSET, lambda p: None)
        sim.run()
        assert len(tlb._tlb) == tlb.entries
        tlb._pending[0] = []
        tlb._finish_walk(0, OFFSET // 4096)  # TLB is full and 0 is resident
        assert tlb.evictions == 0
        assert len(tlb._tlb) == tlb.entries
        assert tlb.translate(1 * 4096, OFFSET, lambda p: None)  # untouched


class TestStats:
    def test_miss_rate(self):
        sim, tlb = make_tlb()
        tlb.translate(0, OFFSET, lambda p: None)
        sim.run()
        for _ in range(3):
            tlb.translate(4, OFFSET, lambda p: None)
        assert tlb.miss_rate() == pytest.approx(0.25)
