"""Full/empty (ready) bits."""

import pytest

from repro.errors import SimulationError
from repro.memory.fullempty import ReadyBits


class TestBasics:
    def test_initially_empty(self):
        bits = ReadyBits("a", 1024, granularity=64)
        assert not bits.is_ready(0)
        assert not bits.all_ready()

    def test_set_range_marks_lines(self):
        bits = ReadyBits("a", 1024, granularity=64)
        bits.set_range(0, 128)
        assert bits.is_ready(0)
        assert bits.is_ready(127)
        assert not bits.is_ready(128)

    def test_partial_line_fill_marks_whole_line(self):
        """Bits track cache-line granularity, matching flush granularity."""
        bits = ReadyBits("a", 1024, granularity=64)
        bits.set_range(0, 32)
        assert bits.is_ready(63)

    def test_set_all(self):
        bits = ReadyBits("a", 300, granularity=64)
        bits.set_all()
        assert bits.all_ready()

    def test_out_of_range_raises(self):
        bits = ReadyBits("a", 64, granularity=64)
        with pytest.raises(SimulationError):
            bits.is_ready(64)

    def test_zero_size_array(self):
        bits = ReadyBits("empty", 0)
        assert bits.all_ready()


class TestBoundaries:
    """End-of-array edge cases (regression: legal boundary ranges used to
    raise, wedging transfers whose last descriptor ended exactly at the
    array boundary)."""

    def test_set_range_ending_at_boundary(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(192, 64)
        assert bits.is_ready(255)
        assert bits.all_ready() is False

    def test_set_range_starting_at_end_is_noop(self):
        # A zero-byte tail descriptor lands exactly at size_bytes.
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(256, 0)
        bits.set_range(256, 64)
        assert not bits.is_ready(192)

    def test_set_range_empty_is_noop(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(0, 0)
        bits.set_range(64, -8)
        assert not bits.is_ready(0)

    def test_set_range_clamps_past_end(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(128, 1024)
        assert bits.is_ready(255)
        assert not bits.is_ready(0)

    def test_unaligned_array_tail_line(self):
        # 300 bytes at 64-byte granularity: 5 bits, last covers [256, 300).
        bits = ReadyBits("a", 300, granularity=64)
        bits.set_range(256, 44)
        assert bits.is_ready(299)
        with pytest.raises(SimulationError):
            bits.is_ready(300)

    def test_out_of_range_message_names_legal_offsets(self):
        bits = ReadyBits("a", 128, granularity=64)
        with pytest.raises(SimulationError, match=r"\[0, 128\)"):
            bits.set_range(192, 64)

    def test_wait_on_zero_size_array_fires_immediately(self):
        bits = ReadyBits("empty", 0)
        fired = []
        stalled = bits.wait(0, lambda: fired.append(1))
        assert not stalled
        assert fired == [1]
        assert bits.is_ready(0)
        assert bits.pending_waiters() == 0


class TestWaiters:
    def test_wait_fires_immediately_when_ready(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(0, 64)
        fired = []
        stalled = bits.wait(10, lambda: fired.append(1))
        assert not stalled
        assert fired == [1]

    def test_wait_fires_on_fill(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        stalled = bits.wait(100, lambda: fired.append(1))
        assert stalled
        assert fired == []
        bits.set_range(64, 64)
        assert fired == [1]

    def test_multiple_waiters_same_line(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        for i in range(3):
            bits.wait(64 + i * 8, lambda i=i: fired.append(i))
        bits.set_range(64, 64)
        assert fired == [0, 1, 2]

    def test_waiters_on_other_lines_untouched(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        bits.wait(0, lambda: fired.append("line0"))
        bits.wait(128, lambda: fired.append("line2"))
        bits.set_range(128, 64)
        assert fired == ["line2"]
        assert bits.pending_waiters() == 1

    def test_stall_counter(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.wait(0, lambda: None)
        bits.set_range(0, 64)
        bits.wait(0, lambda: None)  # no stall: already ready
        assert bits.stalls == 1

    def test_double_set_fires_waiters_once(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        bits.wait(0, lambda: fired.append(1))
        bits.set_range(0, 64)
        bits.set_range(0, 64)
        assert fired == [1]

    def test_serial_data_arrival_order(self):
        """DMA fills sequentially: earlier offsets wake before later ones."""
        bits = ReadyBits("a", 512, granularity=64)
        order = []
        for line in range(8):
            bits.wait(line * 64, lambda line=line: order.append(line))
        for line in range(8):
            bits.set_range(line * 64, 64)
        assert order == list(range(8))


class TestClearRange:
    """The consumer half of a handoff buffer: clearing returns credit."""

    def test_clear_range_empties_lines(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        bits.clear_range(0, 128)
        assert not bits.is_ready(0)
        assert not bits.is_ready(127)
        assert bits.is_ready(128)

    def test_clear_counts_lines(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        bits.clear_range(0, 128)
        bits.clear_range(0, 128)  # already clear: no double count
        assert bits.lines_cleared == 2

    def test_clear_wakes_empty_waiters(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        fired = []
        stalled = bits.wait_empty_range(0, 64, lambda: fired.append(1))
        assert stalled
        bits.clear_range(0, 64)
        assert fired == [1]
        assert bits.pending_empty_waiters() == 0

    def test_clear_boundary_rules_mirror_set(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        bits.clear_range(256, 64)  # at end: no-op, not an error
        bits.clear_range(0, 0)
        assert bits.all_ready()


class TestRangeQueries:
    def test_range_ready_and_empty(self):
        bits = ReadyBits("a", 256, granularity=64)
        assert bits.range_empty(0, 256)
        assert not bits.range_ready(0, 256)
        bits.set_range(0, 128)
        assert bits.range_ready(0, 128)
        assert not bits.range_ready(0, 256)
        assert bits.range_empty(128, 128)
        assert not bits.range_empty(0, 256)

    def test_vacuous_ranges(self):
        bits = ReadyBits("a", 256, granularity=64)
        assert bits.range_ready(0, 0)
        assert bits.range_empty(0, 0)


class TestRangeWaiters:
    def test_wait_range_fires_when_last_line_lands(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        stalled = bits.wait_range(0, 256, lambda: fired.append(1))
        assert stalled
        bits.set_range(0, 192)
        assert fired == []
        bits.set_range(192, 64)
        assert fired == [1]

    def test_wait_range_immediate_when_already_full(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        fired = []
        stalled = bits.wait_range(0, 256, lambda: fired.append(1))
        assert not stalled
        assert fired == [1]

    def test_wait_range_partially_satisfied(self):
        """Only the missing lines are waited on."""
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_range(0, 128)
        fired = []
        bits.wait_range(0, 256, lambda: fired.append(1))
        bits.set_range(128, 128)
        assert fired == [1]

    def test_wait_empty_range_fires_when_drained(self):
        bits = ReadyBits("a", 256, granularity=64)
        bits.set_all()
        fired = []
        stalled = bits.wait_empty_range(0, 128, lambda: fired.append(1))
        assert stalled
        bits.clear_range(0, 64)
        assert fired == []
        bits.clear_range(64, 64)
        assert fired == [1]

    def test_range_waiter_fires_exactly_once(self):
        bits = ReadyBits("a", 256, granularity=64)
        fired = []
        bits.wait_range(0, 128, lambda: fired.append(1))
        bits.set_range(0, 128)
        bits.clear_range(0, 128)
        bits.set_range(0, 128)
        assert fired == [1]


class TestDescriptorGate:
    def _bits(self):
        from repro.memory.fullempty import DescriptorGate
        return DescriptorGate, ReadyBits("buf", 256, granularity=64)

    def test_full_gate(self):
        DescriptorGate, bits = self._bits()
        gate = DescriptorGate(bits, 0, 128, until="full")
        assert not gate.satisfied()
        bits.set_range(0, 128)
        assert gate.satisfied()

    def test_empty_gate(self):
        DescriptorGate, bits = self._bits()
        bits.set_all()
        gate = DescriptorGate(bits, 0, 128, until="empty")
        assert not gate.satisfied()
        bits.clear_range(0, 256)
        assert gate.satisfied()

    def test_wait_marks_gate_and_fires(self):
        DescriptorGate, bits = self._bits()
        gate = DescriptorGate(bits, 0, 64, until="full")
        fired = []
        gate.wait(lambda: fired.append(1))
        assert gate.waited
        bits.set_range(0, 64)
        assert fired == [1]

    def test_notify_open_records_tick(self):
        DescriptorGate, bits = self._bits()
        gate = DescriptorGate(bits, 0, 64, until="full")
        assert gate.opened_tick is None
        gate.notify_open(1234)
        assert gate.opened_tick == 1234

    def test_unknown_condition_rejected(self):
        DescriptorGate, bits = self._bits()
        with pytest.raises(SimulationError):
            DescriptorGate(bits, 0, 64, until="sideways")
