"""MSHR file bookkeeping."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_allocate_until_full(self):
        m = MSHRFile(2)
        assert m.allocate(0x0)
        assert m.allocate(0x40)
        assert m.full()
        assert not m.allocate(0x80)

    def test_double_allocate_raises(self):
        m = MSHRFile(4)
        m.allocate(0x0)
        with pytest.raises(ValueError):
            m.allocate(0x0)

    def test_release_frees_entry(self):
        m = MSHRFile(1)
        m.allocate(0x0)
        m.merge(0x0, "w1")
        waiters = m.release(0x0)
        assert waiters == ["w1"]
        assert not m.full()
        assert m.allocate(0x40)

    def test_lookup(self):
        m = MSHRFile(4)
        assert not m.lookup(0x0)
        m.allocate(0x0)
        assert m.lookup(0x0)


class TestMerging:
    def test_merge_order_preserved(self):
        m = MSHRFile(4)
        m.allocate(0x0)
        for w in ("a", "b", "c"):
            m.merge(0x0, w)
        assert m.release(0x0) == ["a", "b", "c"]

    def test_merged_counter(self):
        m = MSHRFile(4)
        m.allocate(0x0)
        m.merge(0x0, "a")
        m.merge(0x0, "b")
        assert m.merged_misses == 2


class TestStats:
    def test_max_in_use_high_water_mark(self):
        m = MSHRFile(8)
        for i in range(5):
            m.allocate(i * 64)
        for i in range(5):
            m.merge(i * 64, i)
            m.release(i * 64)
        assert m.max_in_use == 5
        assert m.in_use == 0
