"""MOESI snooping coherence."""

import pytest

from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.dram import DRAM
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def make_pair():
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    a = Cache(sim, clock, "a", 4096, 64, 4)
    b = Cache(sim, clock, "b", 4096, 64, 4)
    domain.register(a)
    domain.register(b)
    return sim, domain, a, b, dram


class TestCacheToCache:
    def test_dirty_line_forwarded_from_peer(self):
        sim, domain, a, b, dram = make_pair()
        b.preload(0x100, 64)  # dirty in peer
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        assert domain.cache_to_cache_transfers == 1
        assert domain.memory_fetches == 0
        assert dram.reads == 0

    def test_owner_downgraded_on_peer_read(self):
        sim, _domain, a, b, _ = make_pair()
        b.preload(0x100, 64)
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        assert b.peek_state(0x100) == LineState.OWNED
        assert a.peek_state(0x100) == LineState.SHARED

    def test_exclusive_downgrades_to_shared(self):
        sim, _domain, a, b, _ = make_pair()
        b.access(0x100, 4, False, lambda: None)
        sim.run()
        assert b.peek_state(0x100) == LineState.EXCLUSIVE
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        assert b.peek_state(0x100) == LineState.SHARED

    def test_memory_fetch_when_no_owner(self):
        sim, domain, a, _b, dram = make_pair()
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        assert domain.memory_fetches == 1
        assert dram.reads == 1


class TestInvalidation:
    def test_write_invalidates_peer_copies(self):
        sim, domain, a, b, _ = make_pair()
        b.preload(0x100, 64)
        a.access(0x100, 4, True, lambda: None)
        sim.run()
        assert b.peek_state(0x100) == LineState.INVALID
        assert a.peek_state(0x100) == LineState.MODIFIED
        assert domain.invalidations == 1

    def test_shared_copies_all_invalidated_on_write(self):
        sim, domain, a, b, _ = make_pair()
        # Both read -> both share.
        a.access(0x100, 4, False, lambda: None)
        sim.run()
        b.access(0x100, 4, False, lambda: None)
        sim.run()
        a.access(0x100, 4, True, lambda: None)
        sim.run()
        assert b.peek_state(0x100) == LineState.INVALID
        assert a.peek_state(0x100) == LineState.MODIFIED


class TestMergedWriteUpgrade:
    def test_write_merged_into_read_fill_invalidates_sharers(self):
        """A write that merges into a read-allocated MSHR must upgrade
        through the domain: peers holding the line may not retain stale
        SHARED copies when the requester installs MODIFIED."""
        sim, domain, a, b, _ = make_pair()
        # b owns the line (EXCLUSIVE after a clean read fill).
        b.access(0x100, 4, False, lambda: None)
        sim.run()
        # a read-misses: the fetch downgrades b to SHARED, fill in flight...
        a.access(0x100, 4, False, lambda: None)
        # ...and before the fill lands, a write to the same line merges.
        assert a.access(0x100, 4, True, lambda: None) == "miss"
        sim.run()
        assert a.peek_state(0x100) == LineState.MODIFIED
        assert b.peek_state(0x100) == LineState.INVALID
        assert domain.invalidations == 1
        assert domain.upgrades == 1

    def test_merged_write_with_shared_peers_kills_all_copies(self):
        sim, domain, a, b, _ = make_pair()
        c = Cache(sim, ClockDomain(100), "c", 4096, 64, 4)
        domain.register(c)
        # b and c both end up SHARED.
        b.access(0x100, 4, False, lambda: None)
        sim.run()
        c.access(0x100, 4, False, lambda: None)
        sim.run()
        a.access(0x100, 4, False, lambda: None)
        a.access(0x100, 4, True, lambda: None)
        sim.run()
        assert a.peek_state(0x100) == LineState.MODIFIED
        assert b.peek_state(0x100) == LineState.INVALID
        assert c.peek_state(0x100) == LineState.INVALID

    def test_write_fetch_needs_no_upgrade(self):
        """A primary write miss is already a read-for-ownership; the fill
        installs MODIFIED without a second upgrade round."""
        sim, domain, a, b, _ = make_pair()
        b.preload(0x100, 64)
        a.access(0x100, 4, True, lambda: None)
        sim.run()
        assert a.peek_state(0x100) == LineState.MODIFIED
        assert b.peek_state(0x100) == LineState.INVALID
        assert domain.upgrades == 0


class TestWritebackPath:
    def test_domain_writeback_reaches_dram(self):
        sim, domain, a, _b, dram = make_pair()
        domain.writeback(a, 0x100)
        sim.run()
        assert dram.writes == 1

    def test_writeback_accepts_eviction_state(self):
        sim, domain, a, _b, dram = make_pair()
        domain.writeback(a, 0x100, LineState.MODIFIED)
        sim.run()
        assert dram.writes == 1


class TestFetchSerialization:
    """Concurrent fetches for one line are serialized: the second probe
    must see the first fill's state, not the pre-fill picture (which used
    to install EXCLUSIVE beside an in-flight MODIFIED fill)."""

    def test_concurrent_reads_end_up_shared(self):
        sim, domain, a, b, _ = make_pair()
        a.access(0x100, 4, False, lambda: None)
        b.access(0x100, 4, False, lambda: None)
        sim.run()
        assert domain.deferred_fetches == 1
        assert a.peek_state(0x100) == LineState.SHARED
        assert b.peek_state(0x100) == LineState.SHARED

    def test_concurrent_read_and_write_never_double_own(self):
        sim, domain, a, b, _ = make_pair()
        a.access(0x100, 4, False, lambda: None)
        b.access(0x100, 4, True, lambda: None)
        sim.run()
        states = {a.peek_state(0x100), b.peek_state(0x100)}
        owners = states & {LineState.MODIFIED, LineState.EXCLUSIVE}
        assert len(owners) <= 1
        assert b.peek_state(0x100) == LineState.MODIFIED
        assert a.peek_state(0x100) == LineState.INVALID

    def test_concurrent_writes_serialize(self):
        sim, domain, a, b, _ = make_pair()
        a.access(0x100, 4, True, lambda: None)
        b.access(0x100, 4, True, lambda: None)
        sim.run()
        assert domain.deferred_fetches == 1
        # The later write wins; the earlier copy is invalidated.
        assert b.peek_state(0x100) == LineState.MODIFIED
        assert a.peek_state(0x100) == LineState.INVALID

    def test_three_way_same_line_race(self):
        sim, domain, a, b, _ = make_pair()
        c = Cache(sim, ClockDomain(100), "c", 4096, 64, 4)
        domain.register(c)
        for cache in (a, b, c):
            cache.access(0x100, 4, False, lambda: None)
        sim.run()
        assert domain.deferred_fetches == 2
        for cache in (a, b, c):
            assert cache.peek_state(0x100) == LineState.SHARED

    def test_both_requesters_complete(self):
        sim, _domain, a, b, _ = make_pair()
        done = []
        a.access(0x100, 4, False, lambda: done.append("a"))
        b.access(0x100, 4, False, lambda: done.append("b"))
        sim.run()
        assert sorted(done) == ["a", "b"]

    def test_disjoint_lines_not_serialized(self):
        sim, domain, a, b, _ = make_pair()
        a.access(0x100, 4, False, lambda: None)
        b.access(0x200, 4, False, lambda: None)
        sim.run()
        assert domain.deferred_fetches == 0


class TestTimingProperties:
    def test_c2c_faster_than_flush_dma_roundtrip(self):
        """The cache flow's win for small data: the accelerator gets the
        CPU's dirty line directly instead of waiting for an explicit
        flush-to-DRAM plus a DMA read."""
        sim, _domain, a, b, _ = make_pair()
        b.preload(0x100, 64)
        times = []
        a.access(0x100, 4, False, lambda: times.append(sim.now))
        sim.run()
        # snoop (20ns) + bus transfer of 64B (~170ns) + hit latency
        assert times[0] < 300_000  # under 300 ns

    def test_snoop_latency_applied(self):
        sim, domain, a, b, _ = make_pair()
        b.preload(0x100, 64)
        times = []
        a.access(0x100, 4, False, lambda: times.append(sim.now))
        sim.run()
        assert times[0] >= domain.snoop_ticks
