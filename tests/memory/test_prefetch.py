"""Strided prefetcher."""

from repro.memory.prefetch import NullPrefetcher, StridePrefetcher


class TestStrideDetection:
    def test_no_candidates_on_first_touch(self):
        p = StridePrefetcher()
        assert p.observe("s", 0x100, 64) == []

    def test_needs_two_matching_strides(self):
        p = StridePrefetcher(degree=1)
        p.observe("s", 0, 64)
        assert p.observe("s", 64, 64) == []     # first stride observed
        assert p.observe("s", 128, 64) == [192]  # stride confirmed

    def test_degree_controls_lookahead(self):
        p = StridePrefetcher(degree=3)
        for addr in (0, 64, 128):
            out = p.observe("s", addr, 64)
        assert out == [192, 256, 320]

    def test_stride_change_resets_confidence(self):
        p = StridePrefetcher(degree=1)
        for addr in (0, 64, 128):
            p.observe("s", addr, 64)
        assert p.observe("s", 1000, 64) == []
        assert p.observe("s", 1064, 64) == []   # rebuilding confidence
        assert p.observe("s", 1128, 64) == [1128 + 64 - (1128 + 64) % 64]

    def test_zero_stride_never_prefetches(self):
        p = StridePrefetcher()
        for _ in range(5):
            out = p.observe("s", 0x100, 64)
        assert out == []

    def test_large_stride_skips_own_line(self):
        p = StridePrefetcher(degree=2)
        for addr in (0, 512, 1024):
            out = p.observe("s", addr, 64)
        assert out == [1536, 2048]

    def test_streams_tracked_independently(self):
        p = StridePrefetcher(degree=1)
        for i in range(3):
            p.observe("x", i * 64, 64)
            out_y = p.observe("y", i * 128, 64)
        assert out_y == [3 * 128 - (3 * 128) % 64]

    def test_table_eviction(self):
        p = StridePrefetcher(table_size=2)
        p.observe("a", 0, 64)
        p.observe("b", 0, 64)
        p.observe("c", 0, 64)  # evicts oldest
        assert len(p._table) == 2


class TestNullPrefetcher:
    def test_never_issues(self):
        p = NullPrefetcher()
        for i in range(10):
            assert p.observe("s", i * 64, 64) == []
        assert p.issued == 0
