"""Banked DRAM with open-row policy."""

import pytest

from repro.memory.dram import DRAM
from repro.sim.kernel import Simulator
from repro.sim.ports import MemRequest


def make_dram(**kw):
    sim = Simulator()
    return sim, DRAM(sim, **kw)


class TestRowBuffer:
    def test_first_access_misses(self):
        sim, dram = make_dram()
        dram.handle(MemRequest(0, 64, False))
        sim.run()
        assert dram.row_misses == 1
        assert dram.row_hits == 0

    def test_same_row_hits(self):
        sim, dram = make_dram()
        for offset in (0, 64, 128, 1024):
            dram.handle(MemRequest(offset, 64, False))
        sim.run()
        assert dram.row_misses == 1
        assert dram.row_hits == 3

    def test_row_conflict_in_same_bank(self):
        sim, dram = make_dram(banks=8, row_bytes=4096)
        # Rows 0 and 8 both map to bank 0.
        dram.handle(MemRequest(0, 64, False))
        dram.handle(MemRequest(8 * 4096, 64, False))
        sim.run()
        assert dram.row_misses == 2

    def test_different_banks_independent_rows(self):
        sim, dram = make_dram(banks=8, row_bytes=4096)
        dram.handle(MemRequest(0, 64, False))          # bank 0
        dram.handle(MemRequest(4096, 64, False))       # bank 1
        dram.handle(MemRequest(64, 64, False))         # bank 0 again - hit
        sim.run()
        assert dram.row_hits == 1
        assert dram.row_misses == 2

    def test_sequential_page_stream_is_mostly_hits(self):
        """Pipelined DMA picks page-sized blocks for exactly this reason."""
        sim, dram = make_dram()
        for burst in range(64):  # one full 4 KB row
            dram.handle(MemRequest(burst * 64, 64, False))
        sim.run()
        assert dram.row_hit_rate() == pytest.approx(63 / 64)


class TestTiming:
    def test_hit_faster_than_miss(self):
        sim, dram = make_dram(row_hit_ns=25.0, row_miss_ns=50.0)
        times = []
        dram.handle(MemRequest(0, 64, False,
                               callback=lambda r: times.append(sim.now)))
        sim.run()
        miss_time = times[0]
        dram.handle(MemRequest(64, 64, False,
                               callback=lambda r: times.append(sim.now)))
        sim.run()
        hit_time = times[1] - miss_time
        assert miss_time == 50_000
        assert hit_time == 25_000

    def test_bank_serializes_requests(self):
        sim, dram = make_dram()
        times = []
        for i in range(3):
            dram.handle(MemRequest(i * 64, 64, False,
                                   callback=lambda r: times.append(sim.now)))
        sim.run()
        # miss, then two serialized hits
        assert times == [50_000, 75_000, 100_000]

    def test_banks_operate_in_parallel(self):
        sim, dram = make_dram(banks=8, row_bytes=4096)
        times = []
        for bank in range(4):
            dram.handle(MemRequest(bank * 4096, 64, False,
                                   callback=lambda r: times.append(sim.now)))
        sim.run()
        assert times == [50_000] * 4


class TestBankConflicts:
    def test_back_to_back_same_bank_accumulates_wait(self):
        sim, dram = make_dram(row_hit_ns=25.0, row_miss_ns=50.0)
        # Two requests at tick 0 into bank 0: the first (a row miss) holds
        # the bank for 50 ns, so the second waits exactly that long.
        dram.handle(MemRequest(0, 64, False))
        dram.handle(MemRequest(64, 64, False))
        sim.run()
        assert dram.bank_conflict_ticks[0] == 50_000
        assert all(t == 0 for t in dram.bank_conflict_ticks[1:])

    def test_different_banks_no_conflict(self):
        sim, dram = make_dram(banks=8, row_bytes=4096)
        dram.handle(MemRequest(0, 64, False))      # bank 0
        dram.handle(MemRequest(4096, 64, False))   # bank 1
        sim.run()
        assert sum(dram.bank_conflict_ticks) == 0

    def test_conflicts_accumulate_per_request(self):
        sim, dram = make_dram(row_hit_ns=25.0, row_miss_ns=50.0)
        for i in range(3):
            dram.handle(MemRequest(i * 64, 64, False))
        sim.run()
        # Request 1 waits 50 ns (behind the miss); request 2 waits 75 ns
        # (miss + one hit).
        assert dram.bank_conflict_ticks[0] == 50_000 + 75_000

    def test_vector_stat_mirrors_counters(self):
        from repro.obs.stats import StatRegistry
        sim, dram = make_dram()
        dram.handle(MemRequest(0, 64, False))
        dram.handle(MemRequest(64, 64, False))
        sim.run()
        reg = StatRegistry()
        dram.reg_stats(reg, "soc.dram")
        vec = reg["soc.dram.bank_conflict_ticks"]
        assert vec.value() == dram.bank_conflict_ticks
        assert vec.total() == 50_000
        assert reg.value("soc.dram.row_hits") == 1

    def test_bank_busy_intervals_recorded(self):
        sim, dram = make_dram()
        dram.handle(MemRequest(0, 64, False))
        dram.handle(MemRequest(64, 64, False))
        sim.run()
        assert dram.bank_busy[0].intervals == [(0, 50_000),
                                               (50_000, 75_000)]
        assert all(not t.intervals for t in dram.bank_busy[1:])


class TestStats:
    def test_read_write_counters(self):
        sim, dram = make_dram()
        dram.handle(MemRequest(0, 64, False))
        dram.handle(MemRequest(64, 64, True))
        sim.run()
        assert dram.reads == 1
        assert dram.writes == 1

    def test_hit_rate_empty(self):
        _sim, dram = make_dram()
        assert dram.row_hit_rate() == 0.0
