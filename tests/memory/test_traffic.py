"""Background traffic injector."""

from repro.memory.bus import SystemBus
from repro.memory.dram import DRAM
from repro.memory.traffic import TrafficGenerator
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.ports import MemRequest


def make_traffic(interval=10):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    gen = TrafficGenerator(sim, bus, clock, interval_cycles=interval)
    return sim, bus, gen


class TestInjection:
    def test_emits_bursts_until_stopped(self):
        sim, bus, gen = make_traffic()
        stop_at = [False]
        gen.start(lambda: stop_at[0])
        sim.schedule(100 * 10_000, stop_at.__setitem__, 0, True)
        sim.run()
        assert gen.bursts_issued > 3
        assert bus.bytes_transferred >= gen.bursts_issued * 64 - 64

    def test_stops_promptly(self):
        sim, _bus, gen = make_traffic()
        gen.start(lambda: True)
        sim.run()
        assert gen.bursts_issued <= 1

    def test_deterministic(self):
        counts = []
        for _ in range(2):
            sim, _bus, gen = make_traffic()
            stop = [False]
            gen.start(lambda: stop[0])
            sim.schedule(50 * 10_000, stop.__setitem__, 0, True)
            sim.run()
            counts.append(gen.bursts_issued)
        assert counts[0] == counts[1]

    def test_contention_slows_other_master(self):
        """A loaded bus stretches a foreground transfer — the paper's
        shared-resource-contention effect."""
        def run(with_traffic):
            # Interval must exceed the bus service time (17 cycles/burst at
            # 32 bits) or the injected queue grows without bound.
            sim, bus, gen = make_traffic(interval=25)
            done = []
            if with_traffic:
                gen.start(lambda: bool(done))
            # Foreground: 10 bursts.
            def issue(i):
                if i < 10:
                    bus.request(MemRequest(0x100 + i * 64, 64, False,
                                           callback=lambda r: issue(i + 1)))
                else:
                    done.append(sim.now)
            issue(0)
            sim.run()
            return done[0]

        assert run(True) > run(False)
