"""Partitioned scratchpads."""

import pytest

from repro.errors import ConfigError
from repro.memory.sram import ArraySpec, Scratchpad


def make_spad(partitions=4, ports=1):
    arrays = [ArraySpec("a", 256, 4), ArraySpec("b", 64, 8)]
    return Scratchpad(arrays, partitions, ports)


class TestConstruction:
    def test_invalid_partitions(self):
        with pytest.raises(ConfigError):
            Scratchpad([ArraySpec("a", 64, 4)], 0)

    def test_invalid_ports(self):
        with pytest.raises(ConfigError):
            Scratchpad([ArraySpec("a", 64, 4)], 1, 0)

    def test_total_bytes(self):
        spad = make_spad()
        assert spad.total_bytes == 256 + 64

    def test_bandwidth(self):
        assert make_spad(partitions=8, ports=2).bandwidth_words_per_cycle == 16


class TestCyclicPartitioning:
    def test_bank_of_word(self):
        spad = make_spad(partitions=4)
        assert spad.bank_of("a", 0) == 0
        assert spad.bank_of("a", 5) == 1
        assert spad.bank_of("a", 7) == 3

    def test_partition_bytes_ceil_division(self):
        spad = Scratchpad([ArraySpec("a", 40, 4)], 4)  # 10 words / 4 banks
        assert spad.partition_bytes("a") == 3 * 4


class TestPortArbitration:
    def test_single_port_one_access_per_cycle(self):
        spad = make_spad(partitions=1, ports=1)
        assert spad.try_access("a", 0, cycle=0)
        assert not spad.try_access("a", 1, cycle=0)
        assert spad.try_access("a", 1, cycle=1)

    def test_different_banks_no_conflict(self):
        spad = make_spad(partitions=4, ports=1)
        for i in range(4):
            assert spad.try_access("a", i, cycle=0)
        assert not spad.try_access("a", 4, cycle=0)  # bank 0 again

    def test_dual_ports(self):
        spad = make_spad(partitions=1, ports=2)
        assert spad.try_access("a", 0, cycle=0)
        assert spad.try_access("a", 1, cycle=0)
        assert not spad.try_access("a", 2, cycle=0)

    def test_arrays_have_independent_banks(self):
        spad = make_spad(partitions=1, ports=1)
        assert spad.try_access("a", 0, cycle=0)
        assert spad.try_access("b", 0, cycle=0)

    def test_unknown_array_raises(self):
        spad = make_spad()
        with pytest.raises(ConfigError):
            spad.try_access("zzz", 0, cycle=0)

    def test_conflict_counter(self):
        spad = make_spad(partitions=1)
        spad.try_access("a", 0, 0)
        spad.try_access("a", 1, 0)
        spad.try_access("a", 2, 0)
        assert spad.conflicts == 2
        assert spad.accesses == 1

    def test_per_array_access_counts(self):
        spad = make_spad(partitions=4)
        spad.try_access("a", 0, 0)
        spad.try_access("a", 1, 0)
        spad.try_access("b", 0, 0)
        assert spad.access_by_array == {"a": 2, "b": 1}
