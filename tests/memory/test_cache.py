"""Coherent cache: hits, misses, MSHRs, replacement, flush."""

import pytest

from repro.errors import ConfigError
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.dram import DRAM
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def make_system(size=4096, line=64, assoc=4, mshrs=4, prefetcher="none",
                with_peer=False):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    cache = Cache(sim, clock, "l1", size, line, assoc, mshrs=mshrs,
                  prefetcher=prefetcher)
    domain.register(cache)
    peer = None
    if with_peer:
        peer = Cache(sim, clock, "peer", 64 * 1024, line, 8)
        domain.register(peer)
    return sim, cache, domain, bus, dram, peer


class TestConstruction:
    def test_bad_geometry_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            Cache(sim, ClockDomain(100), "x", 1000, 64, 4)

    def test_num_sets(self):
        sim, cache, *_ = make_system(size=4096, line=64, assoc=4)
        assert cache.num_sets == 16


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        sim, cache, *_ = make_system()
        events = []
        cache.access(0x100, 4, False, lambda: events.append("miss-done"))
        sim.run()
        cache.access(0x104, 4, False, lambda: events.append("hit-done"))
        sim.run()
        assert events == ["miss-done", "hit-done"]
        assert cache.misses == 1
        assert cache.hits == 1

    def test_hit_latency(self):
        sim, cache, *_ = make_system()
        cache.access(0x100, 4, False, lambda: None)
        sim.run()
        t0 = sim.now
        done = []
        cache.access(0x100, 4, False, lambda: done.append(sim.now))
        sim.run()
        assert done[0] - t0 == cache.clock.cycles_to_ticks(cache.hit_latency)

    def test_miss_much_slower_than_hit(self):
        sim, cache, *_ = make_system()
        t_miss = []
        cache.access(0, 4, False, lambda: t_miss.append(sim.now))
        sim.run()
        t_hit = []
        start = sim.now
        cache.access(0, 4, False, lambda: t_hit.append(sim.now))
        sim.run()
        assert t_miss[0] > (t_hit[0] - start) * 5

    def test_line_straddle_rejected(self):
        sim, cache, *_ = make_system(line=64)
        with pytest.raises(ConfigError):
            cache.access(60, 8, False, lambda: None)

    def test_fill_installs_exclusive_without_peers(self):
        sim, cache, *_ = make_system()
        cache.access(0x200, 4, False, lambda: None)
        sim.run()
        assert cache.peek_state(0x200) == LineState.EXCLUSIVE

    def test_write_installs_modified(self):
        sim, cache, *_ = make_system()
        cache.access(0x200, 4, True, lambda: None)
        sim.run()
        assert cache.peek_state(0x200) == LineState.MODIFIED

    def test_write_hit_on_exclusive_upgrades_silently(self):
        sim, cache, *_ = make_system()
        cache.access(0x200, 4, False, lambda: None)
        sim.run()
        misses_before = cache.misses
        cache.access(0x200, 4, True, lambda: None)
        sim.run()
        assert cache.misses == misses_before
        assert cache.peek_state(0x200) == LineState.MODIFIED


class TestMSHR:
    def test_secondary_miss_merges(self):
        sim, cache, *_ = make_system()
        done = []
        cache.access(0x100, 4, False, lambda: done.append("a"))
        cache.access(0x108, 4, False, lambda: done.append("b"))
        sim.run()
        assert sorted(done) == ["a", "b"]
        assert cache.misses == 1
        assert cache.merged == 1

    def test_blocked_when_full(self):
        sim, cache, *_ = make_system(mshrs=2)
        assert cache.access(0x000, 4, False, lambda: None) == "miss"
        assert cache.access(0x100, 4, False, lambda: None) == "miss"
        assert cache.access(0x200, 4, False, lambda: None) == "blocked"
        assert cache.blocked == 1
        sim.run()
        # After fills drain, new misses are accepted again.
        assert cache.access(0x200, 4, False, lambda: None) == "miss"
        sim.run()

    def test_hit_under_miss(self):
        sim, cache, *_ = make_system()
        cache.access(0x000, 4, False, lambda: None)
        sim.run()
        order = []
        cache.access(0x400, 4, False, lambda: order.append("miss"))
        cache.access(0x000, 4, False, lambda: order.append("hit"))
        sim.run()
        assert order == ["hit", "miss"]


class TestReplacement:
    def test_lru_eviction(self):
        # 1 set with assoc 2: size = 2 lines, direct set mapping.
        sim, cache, *_ = make_system(size=128, line=64, assoc=2)
        for addr in (0x0000, 0x1000):
            cache.access(addr, 4, False, lambda: None)
            sim.run()
        # Touch 0x0000 so 0x1000 is LRU.
        cache.access(0x0000, 4, False, lambda: None)
        sim.run()
        cache.access(0x2000, 4, False, lambda: None)
        sim.run()
        assert cache.peek_state(0x0000) != LineState.INVALID
        assert cache.peek_state(0x1000) == LineState.INVALID

    def test_dirty_eviction_writes_back(self):
        sim, cache, _domain, bus, _dram, _ = make_system(size=128, line=64,
                                                         assoc=2)
        cache.access(0x0000, 4, True, lambda: None)
        sim.run()
        cache.access(0x1000, 4, False, lambda: None)
        sim.run()
        writes_before = bus.num_requests
        cache.access(0x2000, 4, False, lambda: None)
        sim.run()
        assert cache.writebacks >= 1
        assert bus.num_requests > writes_before  # fill + writeback

    def test_resident_lines_bounded_by_capacity(self):
        sim, cache, *_ = make_system(size=1024, line=64, assoc=4)
        for i in range(100):
            cache.access(i * 64, 4, False, lambda: None)
            sim.run()
        assert cache.resident_lines() <= 1024 // 64


class TestFlushInvalidate:
    def test_flush_dirty_line_reports_dirty(self):
        sim, cache, *_ = make_system()
        cache.access(0x100, 4, True, lambda: None)
        sim.run()
        assert cache.flush_line(0x100) is True
        assert cache.peek_state(0x100) == LineState.INVALID

    def test_flush_clean_line(self):
        sim, cache, *_ = make_system()
        cache.access(0x100, 4, False, lambda: None)
        sim.run()
        assert cache.flush_line(0x100) is False

    def test_extract_line_no_traffic(self):
        sim, cache, _d, bus, *_ = make_system()
        cache.access(0x100, 4, True, lambda: None)
        sim.run()
        n = bus.num_requests
        assert cache.extract_line(0x100) is True
        assert bus.num_requests == n

    def test_invalidate_drops_dirty_silently(self):
        sim, cache, *_ = make_system()
        cache.preload(0x100, 64)
        cache.invalidate_line(0x100)
        assert cache.peek_state(0x100) == LineState.INVALID
        assert cache.writebacks == 0

    def test_preload_installs_modified(self):
        sim, cache, *_ = make_system()
        cache.preload(0x0, 256)
        for line in range(0, 256, 64):
            assert cache.peek_state(line) == LineState.MODIFIED


class TestPreloadEviction:
    """Preload-path dirty evictions must generate real writeback traffic
    (regression: `preload` used a fill-counting flag that also skipped
    `domain.writeback`, silently dropping modeled bus/DRAM work)."""

    def test_preload_dirty_eviction_reaches_domain(self):
        # 1 set, assoc 2: the third preloaded line evicts a dirty victim.
        sim, cache, _domain, bus, dram, _ = make_system(size=128, line=64,
                                                        assoc=2)
        cache.preload(0x0000, 64)
        cache.preload(0x1000, 64)
        requests_before = bus.num_requests
        cache.preload(0x2000, 64)
        assert cache.writebacks == 1
        sim.run()
        assert bus.num_requests == requests_before + 1
        assert dram.writes == 1

    def test_preload_clean_eviction_no_writeback(self):
        sim, cache, _domain, bus, dram, _ = make_system(size=128, line=64,
                                                        assoc=2)
        cache.preload(0x0000, 64, state=LineState.EXCLUSIVE)
        cache.preload(0x1000, 64, state=LineState.SHARED)
        cache.preload(0x2000, 64)
        sim.run()
        assert cache.writebacks == 0
        assert dram.writes == 0

    def test_preload_does_not_count_demand_fills(self):
        sim, cache, *_ = make_system()
        cache.preload(0x0, 256)
        assert cache.fills == 0
        assert cache.hits == 0 and cache.misses == 0


class TestPrefetch:
    def test_stride_prefetch_fills(self):
        sim, cache, *_ = make_system(size=8192, prefetcher="stride")
        # Establish a steady 64-byte stride.
        for i in range(6):
            cache.access(i * 64, 4, False, lambda: None, stream="s")
            sim.run()
        assert cache.prefetch_fills > 0

    def test_prefetched_line_hits(self):
        sim, cache, *_ = make_system(size=8192, prefetcher="stride")
        for i in range(4):
            cache.access(i * 64, 4, False, lambda: None, stream="s")
            sim.run()
        # The next line should have been prefetched.
        status = cache.access(4 * 64, 4, False, lambda: None, stream="s")
        assert status == "hit"
        sim.run()

    def test_no_prefetcher_by_default(self):
        sim, cache, *_ = make_system(prefetcher="none")
        for i in range(8):
            cache.access(i * 64, 4, False, lambda: None, stream="s")
            sim.run()
        assert cache.prefetch_fills == 0


class TestStats:
    def test_miss_rate(self):
        sim, cache, *_ = make_system()
        cache.access(0x0, 4, False, lambda: None)
        sim.run()
        cache.access(0x0, 4, False, lambda: None)
        sim.run()
        assert cache.miss_rate() == pytest.approx(0.5)

    def test_fills_counted_once_per_line(self):
        sim, cache, *_ = make_system()
        cache.access(0x0, 4, False, lambda: None)
        cache.access(0x8, 4, False, lambda: None)   # merges
        sim.run()
        assert cache.fills == 1
