"""System bus: occupancy, FIFO arbitration, bandwidth."""

import pytest

from repro.errors import ReproError
from repro.memory.bus import SystemBus
from repro.sim.kernel import Simulator
from repro.sim.clock import ClockDomain
from repro.sim.ports import MemRequest


class _Sink:
    """Downstream that completes requests immediately."""

    def __init__(self, sim):
        self.sim = sim
        self.handled = []

    def handle(self, req):
        self.handled.append(req)
        req.complete(self.sim.now)


def make_bus(width_bits=32, arb=1):
    sim = Simulator()
    clock = ClockDomain(100)
    sink = _Sink(sim)
    bus = SystemBus(sim, clock, width_bits, downstream=sink, arb_cycles=arb)
    return sim, bus, sink


class TestOccupancy:
    def test_single_beat_plus_arb(self):
        _sim, bus, _ = make_bus(32)
        # 4 bytes = 1 beat, +1 arb cycle -> 2 cycles = 20000 ticks
        assert bus.occupancy_ticks(4) == 20_000

    def test_64byte_burst_on_32bit(self):
        _sim, bus, _ = make_bus(32)
        assert bus.occupancy_ticks(64) == (1 + 16) * 10_000

    def test_64byte_burst_on_64bit_is_half_the_beats(self):
        _sim, bus, _ = make_bus(64)
        assert bus.occupancy_ticks(64) == (1 + 8) * 10_000

    def test_zero_size_still_one_beat(self):
        _sim, bus, _ = make_bus(32)
        assert bus.occupancy_ticks(0) == 20_000

    def test_non_byte_width_rejected(self):
        sim = Simulator()
        with pytest.raises((ValueError, ReproError)):
            SystemBus(sim, ClockDomain(100), 33)


class TestTransferTiming:
    def test_request_completes_after_occupancy(self):
        sim, bus, sink = make_bus(32)
        done = []
        req = MemRequest(0x100, 64, False, callback=lambda r: done.append(sim.now))
        bus.request(req)
        sim.run()
        assert done == [170_000]
        assert sink.handled == [req]

    def test_fifo_serialization(self):
        sim, bus, _ = make_bus(32)
        done = []
        for i in range(3):
            bus.request(MemRequest(i * 64, 64, False,
                                   callback=lambda r, i=i: done.append((i, sim.now))))
        sim.run()
        assert done == [(0, 170_000), (1, 340_000), (2, 510_000)]

    def test_bandwidth_doubles_with_width(self):
        sim32, bus32, _ = make_bus(32)
        sim64, bus64, _ = make_bus(64)
        end = {}
        for label, sim, bus in (("w32", sim32, bus32), ("w64", sim64, bus64)):
            for i in range(8):
                bus.request(MemRequest(i * 64, 64, False))
            sim.run()
            end[label] = sim.now
        # 64-bit finishes in roughly half the beats (arb overhead shared).
        assert end["w64"] < end["w32"]
        assert end["w64"] >= end["w32"] // 2

    def test_extra_delay_shifts_grant(self):
        sim, bus, _ = make_bus(32)
        done = []
        bus.request(MemRequest(0, 4, False,
                               callback=lambda r: done.append(sim.now)),
                    extra_delay=100_000)
        sim.run()
        assert done[0] == 100_000 + 20_000

    def test_no_downstream_completes_on_bus(self):
        sim = Simulator()
        bus = SystemBus(sim, ClockDomain(100), 32, downstream=None)
        done = []
        bus.request(MemRequest(0, 4, False,
                               callback=lambda r: done.append(sim.now)),
                    target=None)
        sim.run()
        assert done == [20_000]


class TestTickStamping:
    def test_uncontended_request_grant_matches_issue(self):
        sim, bus, _ = make_bus(32)
        req = MemRequest(0, 4, False)
        bus.request(req)
        sim.run()
        assert req.issue_tick == 0
        assert req.grant_tick == 0
        assert bus.queue_ticks == 0

    def test_contention_stamps_real_grant_tick(self):
        """Back-to-back requests: each later request's grant tick is the
        previous occupancy end, and the queueing latency is grant - issue."""
        sim, bus, _ = make_bus(32)
        reqs = [MemRequest(i * 64, 64, False) for i in range(3)]
        for req in reqs:
            bus.request(req)
        sim.run()
        occupancy = bus.occupancy_ticks(64)
        for i, req in enumerate(reqs):
            assert req.issue_tick == 0
            assert req.grant_tick == i * occupancy
        assert bus.queue_ticks == occupancy + 2 * occupancy
        assert bus.max_queue_ticks == 2 * occupancy

    def test_extra_delay_included_in_issue_tick(self):
        """Snoop latency delays arrival at arbitration: the issue tick is
        when the request reaches the bus, not when the caller ran."""
        sim, bus, _ = make_bus(32)
        req = MemRequest(0, 4, False)
        bus.request(req, extra_delay=100_000)
        sim.run()
        assert req.issue_tick == 100_000
        assert req.grant_tick == 100_000
        # Waiting out the snoop is not bus queueing time.
        assert bus.queue_ticks == 0

    def test_avg_queue_ticks(self):
        sim, bus, _ = make_bus(32)
        for i in range(4):
            bus.request(MemRequest(i * 64, 64, False))
        sim.run()
        occupancy = bus.occupancy_ticks(64)
        assert bus.avg_queue_ticks() == pytest.approx(
            (0 + occupancy + 2 * occupancy + 3 * occupancy) / 4)


class TestStats:
    def test_bytes_and_requests_counted(self):
        sim, bus, _ = make_bus()
        bus.request(MemRequest(0, 64, False))
        bus.request(MemRequest(64, 32, True))
        sim.run()
        assert bus.bytes_transferred == 96
        assert bus.num_requests == 2

    def test_utilization_saturated(self):
        sim, bus, _ = make_bus()
        for i in range(4):
            bus.request(MemRequest(i * 64, 64, False))
        sim.run()
        assert bus.utilization(0, sim.now) == pytest.approx(1.0)

    def test_utilization_idle_window(self):
        sim, bus, _ = make_bus()
        bus.request(MemRequest(0, 64, False))
        sim.run()
        assert bus.utilization(sim.now, sim.now + 1000) == 0.0
