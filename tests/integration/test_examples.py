"""The shipped examples must run (they are the library's front door)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

# Fast examples run in CI; the sweep-heavy ones get a smoke marker and a
# generous timeout.
FAST = ["quickstart.py", "custom_kernel.py", "multi_accelerator.py"]
SLOW = ["dma_vs_cache.py", "codesign_sweep.py", "contention_study.py"]


def run_example(name, args=(), timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name):
    out = run_example(name)
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_both_designs():
    out = run_example("quickstart.py")
    assert "baseline DMA" in out
    assert "pipelined + triggered DMA" in out
    assert "EDP" in out


def test_custom_kernel_runs_isolated_and_codesigned():
    out = run_example("custom_kernel.py")
    assert "isolated (Aladdin standalone)" in out
    assert "co-designed (full SoC flow)" in out


def test_multi_accelerator_reports_slowdowns():
    out = run_example("multi_accelerator.py")
    assert "slowdown" in out
    assert "makespan" in out


@pytest.mark.parametrize("name", SLOW)
def test_slow_examples_exist_and_compile(name):
    path = EXAMPLES / name
    assert path.exists()
    compile(path.read_text(), str(path), "exec")
