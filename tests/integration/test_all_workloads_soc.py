"""Every workload through every offload flow — deadlock/consistency sweep.

The trickiest interactions (ready-bit gating on inout arrays, serial
scatter kernels under triggered compute, TLB pressure from many arrays)
only show up end to end, so run all 19 kernels through both memory
interfaces with the aggressive optimizations on.
"""

import pytest

from repro.core.config import DesignPoint
from repro.core.soc import run_design
from repro.workloads import ALL_WORKLOADS, cached_trace, get_workload


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
class TestEveryWorkloadEndToEnd:
    def test_dma_all_optimizations(self, workload):
        design = DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                             pipelined_dma=True, dma_triggered_compute=True)
        result = run_design(workload, design)
        assert result.total_ticks > 0
        assert sum(result.breakdown.values()) == result.total_ticks
        assert result.energy_pj > 0
        assert result.area_mm2 > 0

    def test_cache_interface(self, workload):
        design = DesignPoint(lanes=4, mem_interface="cache",
                             cache_size_kb=8, cache_ports=2)
        result = run_design(workload, design)
        assert result.total_ticks > 0
        assert 0.0 <= result.stats["cache_miss_rate"] <= 1.0
        assert result.stats["c2c_transfers"] > 0  # CPU data pulled coherently

    def test_functional_state_intact_after_both_flows(self, workload):
        """Timing simulation must never corrupt the traced functional
        results: re-verify against the reference after the runs above."""
        get_workload(workload).verify(cached_trace(workload))

    def test_compute_bounded_by_isolated(self, workload):
        """In-system compute time can never beat the isolated schedule of
        the same datapath (the system only adds stalls)."""
        from repro.aladdin.accelerator import Accelerator
        design = DesignPoint(lanes=4, partitions=4)
        iso = Accelerator(cached_trace(workload), 4, 4).run_isolated()
        co = run_design(workload, design)
        assert co.stats["compute_ticks"] >= iso.ticks
