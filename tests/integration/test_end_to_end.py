"""Cross-subsystem integration: the paper's claims, end to end."""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.soc import SoC, run_design
from repro.core.scenarios import run_isolated


class TestIsolatedVsCodesignedGap:
    """Section II-A: unaccounted data movement makes isolated predictions
    misleading."""

    def test_system_effects_stretch_runtime(self):
        d = DesignPoint(lanes=16, partitions=16)
        iso = run_isolated("stencil-stencil3d", d)
        co = run_design("stencil-stencil3d", d)
        assert co.total_ticks > 1.5 * iso.total_ticks

    @pytest.mark.parametrize("workload", ["fft-transpose", "spmv-crs"])
    def test_codesign_shifts_optimum_to_fewer_lanes(self, workload):
        """Figure 1: the co-designed EDP optimum is less parallel than the
        isolated one (data movement bounds runtime, so extra lanes only
        add leakage)."""
        designs = [DesignPoint(lanes=l, partitions=l) for l in (1, 4, 16)]
        iso_best = min((run_isolated(workload, d) for d in designs),
                       key=lambda r: r.edp)
        co_best = min((run_design(workload, d) for d in designs),
                      key=lambda r: r.edp)
        assert iso_best.design.lanes == 16
        assert co_best.design.lanes < 16


class TestDmaOptimizationStack:
    """Section IV-B: each optimization must help, cumulatively."""

    @pytest.mark.parametrize("workload", ["md-knn", "stencil-stencil2d"])
    def test_cumulative_speedup(self, workload):
        t = {}
        for name, pipe, trig in (("base", False, False),
                                 ("pipe", True, False),
                                 ("trig", True, True)):
            d = DesignPoint(lanes=4, partitions=4, pipelined_dma=pipe,
                            dma_triggered_compute=trig)
            t[name] = run_design(workload, d).total_ticks
        assert t["pipe"] <= t["base"]
        assert t["trig"] <= t["pipe"]
        assert t["trig"] < t["base"]

    def test_serial_data_arrival_bounds_triggered_compute(self):
        """Section IV-C2: with all optimizations, more lanes stop helping
        once compute is fully overlapped with the (serial) DMA stream."""
        d16 = DesignPoint(lanes=16, partitions=16, pipelined_dma=True,
                          dma_triggered_compute=True)
        r16 = run_design("fft-transpose", d16)
        # The DMA stream itself lower-bounds runtime: 24 KB over a 32-bit
        # 100 MHz bus is >= 60 us regardless of parallelism.
        assert r16.time_us > 55


class TestCoherenceVisibleInFlow:
    def test_dma_mode_pays_flush_cache_mode_does_not(self):
        d_dma = DesignPoint(lanes=4, partitions=4)
        d_cache = DesignPoint(lanes=4, mem_interface="cache")
        soc_dma = SoC("gemm-ncubed", d_dma)
        soc_dma.run()
        soc_cache = SoC("gemm-ncubed", d_cache)
        soc_cache.run()
        assert soc_dma.driver.lines_flushed > 0
        assert soc_cache.driver.lines_flushed == 0
        assert soc_cache.domain.cache_to_cache_transfers > 0

    def test_dma_reads_hit_dram_after_flush(self):
        """The flush wrote the data back, so DMA reads find it in DRAM."""
        soc = SoC("gemm-ncubed", DesignPoint(lanes=4, partitions=4))
        soc.run()
        assert soc.driver.dirty_writebacks > 0
        assert soc.dram.reads > 0


class TestContentionScenario:
    """Section V-B2: co-design matters more in contended systems."""

    def test_narrow_bus_hurts_data_bound_workload_more(self):
        d = DesignPoint(lanes=4, partitions=4, pipelined_dma=True,
                        dma_triggered_compute=True)
        ratios = {}
        for w in ("fft-transpose", "nw-nw"):
            t32 = run_design(w, d, SoCConfig(bus_width_bits=32)).total_ticks
            t64 = run_design(w, d, SoCConfig(bus_width_bits=64)).total_ticks
            ratios[w] = t32 / t64
        # fft moves 24 KB; nw moves ~0.3 KB.
        assert ratios["fft-transpose"] > ratios["nw-nw"]

    def test_traffic_and_narrow_bus_compound(self):
        d = DesignPoint(lanes=4, partitions=4)
        base = run_design("spmv-crs", d, SoCConfig()).total_ticks
        loaded = run_design("spmv-crs", d,
                            SoCConfig(background_traffic=True,
                                      traffic_interval_cycles=30)).total_ticks
        assert loaded > base


class TestEnergyConservation:
    @pytest.mark.parametrize("mem", ["dma", "cache"])
    def test_breakdown_sums(self, mem):
        d = DesignPoint(lanes=4, partitions=4, mem_interface=mem)
        r = run_design("aes-aes", d)
        parts = r.energy.as_dict()
        assert sum(parts.values()) == pytest.approx(r.energy_pj)
        assert r.energy_pj > 0

    def test_breakdown_ticks_sum_to_total(self):
        for mem in ("dma", "cache"):
            r = run_design("kmp", DesignPoint(lanes=2, partitions=2,
                                              mem_interface=mem))
            assert sum(r.breakdown.values()) == r.total_ticks


class TestReproducibility:
    def test_full_flow_bit_identical(self):
        d = DesignPoint(lanes=8, partitions=8, mem_interface="cache",
                        cache_size_kb=4)
        a = run_design("viterbi", d)
        b = run_design("viterbi", d)
        assert a.total_ticks == b.total_ticks
        assert a.energy_pj == b.energy_pj
        assert a.breakdown == b.breakdown
