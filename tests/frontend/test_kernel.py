"""The @kernel decorator: two-pass capture, verification, registration."""

import pytest

from repro import frontend as fe
from repro.errors import FrontendError, WorkloadError
from repro.workloads.registry import (
    Workload,
    cached_trace,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
    workload_source,
)


def make_saxpy():
    @fe.kernel(description="scaled vector add")
    def saxpy(a: fe.Array("a", 16, word_bytes=8, kind="input"),
              b: fe.Array("b", 16, word_bytes=8, kind="input"),
              y: fe.Array("y", 16, word_bytes=8, kind="output")):
        for i in fe.parallel_range(16):
            y[i] = 2.0 * a[i] + b[i]
    return saxpy


class TestDecorator:
    def test_names_default_from_function(self):
        @fe.kernel
        def my_fir_filter(x: fe.Array("x", 4, kind="input"),
                          y: fe.Array("y", 4, kind="output")):
            """First docstring line becomes the description.

            Not this one.
            """
            for i in fe.parallel_range(4):
                y[i] = x[i] + 0.0

        assert my_fir_filter.name == "my-fir-filter"
        assert my_fir_filter.description == (
            "First docstring line becomes the description.")

    def test_explicit_name_and_description_win(self):
        @fe.kernel(name="saxpy16", description="custom")
        def whatever(x: fe.Array("x", 4, kind="input"),
                     y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                y[i] = x[i] + 1.0

        assert whatever.name == "saxpy16"
        assert whatever.description == "custom"

    def test_is_a_workload(self):
        assert isinstance(make_saxpy(), Workload)


class TestCapture:
    def test_build_traces_and_self_checks(self):
        saxpy = make_saxpy()
        tb = saxpy.build()
        # 16 iterations x (2 loads, 1 mul, 1 add, 1 store).
        assert tb.num_nodes == 16 * 5
        assert tb.num_iterations() == 16
        saxpy.verify(tb)

    def test_reference_matches_trace_data(self):
        saxpy = make_saxpy()
        ref = saxpy.reference()
        tb = saxpy.build()
        assert tb.arrays["y"].data == ref["y"]

    def test_builds_are_deterministic(self):
        tb1 = make_saxpy().build()
        tb2 = make_saxpy().build()
        assert tb1.node_op == tb2.node_op
        assert tb1.arrays["y"].data == tb2.arrays["y"].data

    def test_seed_pins_rng_stream(self):
        @fe.kernel(name="pinned", seed="repro-gemm-ncubed")
        def pinned(x: fe.Array("x", 8, kind="input"),
                   y: fe.Array("y", 8, kind="output")):
            for i in fe.parallel_range(8):
                y[i] = x[i] + 0.0

        import random
        want = [random.Random("repro-gemm-ncubed").uniform(-1.0, 1.0)
                for _ in range(1)]
        assert pinned.build().arrays["x"].data[0] == want[0]

    def test_zero_node_kernel_rejected(self):
        @fe.kernel
        def lazy(x: fe.Array("x", 4, kind="input"),
                 y: fe.Array("y", 4, kind="output")):
            pass

        with pytest.raises(FrontendError, match="zero operations"):
            lazy.build()

    def test_host_state_divergence_detected(self):
        calls = []

        @fe.kernel
        def impure(x: fe.Array("x", 4, kind="input"),
                   y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                calls.append(i)
                y[i] = x[i] + float(len(calls))

        with pytest.raises(FrontendError, match="diverged"):
            impure.build()

    def test_verify_catches_corrupted_output(self):
        saxpy = make_saxpy()
        tb = saxpy.build()
        tb.arrays["y"].data[3] += 1.0
        with pytest.raises(AssertionError, match=r"y\[3\]"):
            saxpy.verify(tb)

    def test_internal_arrays_not_verified(self):
        @fe.kernel
        def scratch(x: fe.Array("x", 4, kind="input"),
                    tmp: fe.Array("tmp", 4, kind="internal"),
                    y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                tmp[i] = x[i] * 2.0
                y[i] = tmp[i] + 1.0

        tb = scratch.build()
        tb.arrays["tmp"].data[0] = 99.0  # scratch contents may differ
        scratch.verify(tb)

    def test_traced_index_indirection(self):
        # The spmv idiom: an index loaded from one array addresses another.
        @fe.kernel
        def gather(idx: fe.Array("idx", 4, word_bytes=4, kind="input",
                                 init=[3, 0, 2, 1]),
                   x: fe.Array("x", 4, kind="input"),
                   y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                y[i] = x[idx[i]] + 0.0

        tb = gather.build()
        gather.verify(tb)
        data = tb.arrays["x"].data
        assert tb.arrays["y"].data == [data[3], data[0], data[2], data[1]]

    def test_intrinsics_inside_kernel(self):
        @fe.kernel
        def norms(x: fe.Array("x", 8, kind="input"),
                  y: fe.Array("y", 8, kind="output")):
            for i in fe.parallel_range(8):
                y[i] = fe.sqrt(fe.fmax(x[i] * x[i], 1e-6))

        norms.verify(norms.build())


class TestSignatureValidation:
    def test_missing_annotation(self):
        with pytest.raises(FrontendError, match="Array annotation"):
            @fe.kernel
            def k(x):
                pass

    def test_string_annotation_hint(self):
        with pytest.raises(FrontendError, match="from __future__"):
            @fe.kernel
            def k(x: 'fe.Array("x", 4)'):
                pass

    def test_varargs_rejected(self):
        with pytest.raises(FrontendError, match=r"\*args"):
            @fe.kernel
            def k(*arrays):
                pass

    def test_duplicate_array_names(self):
        with pytest.raises(FrontendError, match="aliased"):
            @fe.kernel
            def k(a: fe.Array("v", 4, kind="input"),
                  b: fe.Array("v", 4, kind="output")):
                pass

    def test_no_arrays(self):
        with pytest.raises(FrontendError, match="no arrays"):
            @fe.kernel
            def k():
                pass


class TestTracingRestrictions:
    def test_write_to_input_rejected(self):
        @fe.kernel
        def k(x: fe.Array("x", 4, kind="input")):
            for i in fe.parallel_range(4):
                x[i] = x[i] + 1.0

        with pytest.raises(FrontendError, match="read-only input"):
            k.build()

    def test_out_of_bounds_rejected(self):
        @fe.kernel
        def k(x: fe.Array("x", 4, kind="input"),
              y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(5):
                y[i] = x[i] + 0.0

        with pytest.raises(FrontendError, match="out of bounds"):
            k.build()

    def test_negative_index_rejected(self):
        @fe.kernel
        def k(x: fe.Array("x", 4, kind="input"),
              y: fe.Array("y", 4, kind="output")):
            y[0] = x[-1] + 0.0

        with pytest.raises(FrontendError, match="negative"):
            k.build()

    def test_data_dependent_branch_rejected(self):
        @fe.kernel
        def k(x: fe.Array("x", 4, kind="input"),
              y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                if x[i] > 0.0:
                    y[i] = x[i] + 0.0

        with pytest.raises(FrontendError, match="control flow"):
            k.build()

    def test_nested_parallel_range_rejected(self):
        @fe.kernel
        def k(x: fe.Array("x", 4, kind="input"),
              y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(2):
                for j in fe.parallel_range(2):
                    y[i * 2 + j] = x[i * 2 + j] + 0.0

        with pytest.raises(FrontendError, match="nest"):
            k.build()

    def test_kernel_inside_kernel_rejected(self):
        inner = make_saxpy()

        @fe.kernel
        def outer(x: fe.Array("x", 4, kind="input"),
                  y: fe.Array("y", 4, kind="output")):
            inner.build()

        with pytest.raises(FrontendError, match="must not call"):
            outer.build()


class TestRegistration:
    def test_register_and_lookup(self, clean_registry):
        saxpy = make_saxpy()
        assert saxpy.register() is saxpy
        assert "saxpy" in workload_names()
        assert get_workload("saxpy") is saxpy
        assert workload_source("saxpy") == "frontend"
        assert workload_source("gemm-ncubed") == "builtin"
        trace = cached_trace("saxpy")
        saxpy.verify(trace)
        unregister_workload("saxpy")
        assert "saxpy" not in workload_names()

    def test_builtin_collision_always_rejected(self, clean_registry):
        @fe.kernel(name="gemm-ncubed")
        def impostor(x: fe.Array("x", 4, kind="input"),
                     y: fe.Array("y", 4, kind="output")):
            for i in fe.parallel_range(4):
                y[i] = x[i] + 0.0

        with pytest.raises(WorkloadError, match="builtin"):
            impostor.register()
        with pytest.raises(WorkloadError, match="builtin"):
            impostor.register(replace=True)

    def test_dynamic_collision_needs_replace(self, clean_registry):
        first = make_saxpy().register()
        second = make_saxpy()
        with pytest.raises(WorkloadError, match="already registered"):
            second.register()
        assert get_workload("saxpy") is first
        second.register(replace=True)
        assert get_workload("saxpy") is second

    def test_replace_invalidates_trace_cache(self, clean_registry):
        first = make_saxpy().register()
        stale = cached_trace("saxpy")
        make_saxpy().register(replace=True)
        assert cached_trace("saxpy") is not stale
        assert first is not None

    def test_unregister_builtin_rejected(self, clean_registry):
        with pytest.raises(WorkloadError, match="builtin"):
            unregister_workload("gemm-ncubed")

    def test_unregister_unknown_rejected(self, clean_registry):
        with pytest.raises(WorkloadError, match="not registered"):
            unregister_workload("never-was")


class TestWorkloadBase:
    def test_unnamed_rng_rejected(self):
        with pytest.raises(WorkloadError, match="no name"):
            Workload().rng()

    def test_named_workloads_get_distinct_streams(self, clean_registry):
        a = Workload.from_builder("stream-a", build=lambda: None,
                                  verify=lambda t: None)
        b = Workload.from_builder("stream-b", build=lambda: None,
                                  verify=lambda t: None)
        assert a.rng().random() != b.rng().random()
        assert a.rng().random() == a.rng().random()  # and reproducible

    def test_from_builder_validation(self):
        with pytest.raises(WorkloadError, match="name"):
            Workload.from_builder("", build=lambda: None)
        with pytest.raises(WorkloadError, match="callable"):
            Workload.from_builder("x", build="not-callable")
        with pytest.raises(WorkloadError, match="callable"):
            Workload.from_builder("x", build=lambda: None, verify=42)

    def test_register_requires_verify(self, clean_registry):
        incomplete = Workload.from_builder("half-done", build=lambda: None)
        with pytest.raises(WorkloadError, match="verify"):
            register_workload(incomplete)

        class NoVerify(Workload):
            name = "no-verify"

            def build(self):
                return None

        with pytest.raises(WorkloadError, match="verify"):
            register_workload(NoVerify())

    def test_register_rejects_non_workload(self, clean_registry):
        with pytest.raises(WorkloadError, match="Workload instance"):
            register_workload(lambda: None)

    def test_register_rejects_unnamed(self, clean_registry):
        wl = make_saxpy()
        wl.name = ""
        with pytest.raises(WorkloadError, match="name"):
            register_workload(wl)
