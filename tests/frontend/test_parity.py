"""Frontend/DSL parity: twins must be bit-identical, trace and schedule.

Three builtin-style kernels are re-expressed as plain-Python frontend
kernels: the traced node streams (opcodes, iteration tags, memory
addresses, dependence tuples), the captured data, the op histograms and
the scheduled cycle/energy stats must all match the hand-written
trace-builder versions exactly — not approximately.  This is the
frontend's contract: writing the kernel as ordinary Python costs nothing
in fidelity.
"""

import pytest

from repro import frontend as fe
from repro.aladdin.accelerator import Accelerator
from repro.core.config import DesignPoint
from repro.core.soc import run_design
from repro.workloads.registry import get_workload

GEMM_N = 16          # must match repro.workloads.gemm.N
ROWS, COLS = 32, 32  # must match repro.workloads.stencil2d


def assert_twins(dsl, frontend):
    """Bit-identical traces: node streams, data, histogram, schedule."""
    assert frontend.node_op == dsl.node_op
    assert frontend.node_iter == dsl.node_iter
    assert frontend.node_array == dsl.node_array
    assert frontend.node_index == dsl.node_index
    assert frontend.deps == dsl.deps
    assert frontend.op_histogram() == dsl.op_histogram()
    for name, decl in dsl.arrays.items():
        assert frontend.arrays[name].data == decl.data
        assert frontend.arrays[name].word_bytes == decl.word_bytes
        assert frontend.arrays[name].kind == decl.kind
    for lanes, partitions in ((1, 1), (4, 4)):
        a = Accelerator(dsl, lanes=lanes, partitions=partitions)
        b = Accelerator(frontend, lanes=lanes, partitions=partitions)
        ra, rb = a.run_isolated(), b.run_isolated()
        assert rb.cycles == ra.cycles
        assert rb.power_mw == ra.power_mw
        assert rb.edp == ra.edp


@fe.kernel(name="gemm-frontend", seed="repro-gemm-ncubed",
           description="frontend twin of gemm-ncubed")
def gemm_frontend(
        m1: fe.Array("m1", GEMM_N * GEMM_N, word_bytes=8, kind="input"),
        m2: fe.Array("m2", GEMM_N * GEMM_N, word_bytes=8, kind="input"),
        prod: fe.Array("prod", GEMM_N * GEMM_N, word_bytes=8,
                       kind="output")):
    n = GEMM_N
    for ij in fe.parallel_range(n * n):
        i, j = divmod(ij, n)
        acc = 0.0
        for k in range(n):
            acc = acc + m1[i * n + k] * m2[k * n + j]
        prod[i * n + j] = acc


@fe.kernel(name="stencil-frontend", seed="repro-stencil-stencil2d",
           description="frontend twin of stencil-stencil2d")
def stencil_frontend(
        orig: fe.Array("orig", ROWS * COLS, word_bytes=4, kind="input",
                       init=lambda rng: [rng.uniform(0.0, 1.0)
                                         for _ in range(ROWS * COLS)]),
        filt: fe.Array("filter", 9, word_bytes=4, kind="input"),
        sol: fe.Array("sol", ROWS * COLS, word_bytes=4, kind="output")):
    for rc in fe.parallel_range((ROWS - 2) * (COLS - 2)):
        r, c = divmod(rc, COLS - 2)
        acc = 0.0
        for k1 in range(3):
            for k2 in range(3):
                acc = acc + filt[k1 * 3 + k2] * orig[(r + k1) * COLS
                                                     + (c + k2)]
        sol[r * COLS + c] = acc


DOT_N = 256
DOT_A = [0.5 + i * 0.01 for i in range(DOT_N)]
DOT_B = [1.0 - i * 0.003 for i in range(DOT_N)]


def build_dot_product_dsl():
    """The hand-written dot product of examples/custom_kernel.py."""
    from repro.aladdin.trace import TraceBuilder

    tb = TraceBuilder("dot-product")
    tb.array("a", DOT_N, word_bytes=8, kind="input", init=list(DOT_A))
    tb.array("b", DOT_N, word_bytes=8, kind="input", init=list(DOT_B))
    tb.array("partial", 16, word_bytes=8, kind="internal")
    tb.array("result", 1, word_bytes=8, kind="output")
    chunk = DOT_N // 16
    partials = []
    for c in range(16):
        with tb.iteration(c):
            acc = 0.0
            for i in range(c * chunk, (c + 1) * chunk):
                acc = tb.fadd(acc, tb.fmul(tb.load("a", i),
                                           tb.load("b", i)))
            tb.store("partial", c, acc)
            partials.append(acc)
    total = partials[0]
    for c in range(1, 16):
        total = tb.fadd(total, tb.load("partial", c))
    tb.store("result", 0, total)
    return tb


@fe.kernel(name="dot-frontend",
           description="frontend twin of the custom dot-product example")
def dot_frontend(
        a: fe.Array("a", DOT_N, word_bytes=8, kind="input",
                    init=list(DOT_A)),
        b: fe.Array("b", DOT_N, word_bytes=8, kind="input",
                    init=list(DOT_B)),
        partial: fe.Array("partial", 16, word_bytes=8, kind="internal"),
        result: fe.Array("result", 1, word_bytes=8, kind="output")):
    chunk = DOT_N // 16
    partials = []
    for c in fe.parallel_range(16):
        acc = 0.0
        for i in range(c * chunk, (c + 1) * chunk):
            acc = acc + a[i] * b[i]
        partial[c] = acc
        partials.append(acc)
    total = partials[0]
    for c in range(1, 16):
        total = total + partial[c]
    result[0] = total


class TestParity:
    def test_gemm_twin_bit_identical(self):
        assert_twins(get_workload("gemm-ncubed").build(),
                     gemm_frontend.build())

    def test_stencil2d_twin_bit_identical(self):
        assert_twins(get_workload("stencil-stencil2d").build(),
                     stencil_frontend.build())

    def test_dot_product_twin_bit_identical(self):
        assert_twins(build_dot_product_dsl(), dot_frontend.build())

    def test_builtin_verify_accepts_frontend_trace(self):
        # The DSL workload's own verifier blesses the frontend trace —
        # same data, same answers, not merely the same shape.
        get_workload("gemm-ncubed").verify(gemm_frontend.build())
        get_workload("stencil-stencil2d").verify(stencil_frontend.build())


class TestFullSoCParity:
    @pytest.mark.parametrize("design", [
        DesignPoint(lanes=4, partitions=4),
        DesignPoint(lanes=2, mem_interface="cache", cache_size_kb=4),
    ], ids=["dma", "cache"])
    def test_gemm_soc_stats_identical(self, design, clean_registry):
        gemm_frontend.register(replace=True)
        mine = run_design("gemm-frontend", design)
        theirs = run_design("gemm-ncubed", design)
        assert mine.total_ticks == theirs.total_ticks
        assert mine.accel_cycles == theirs.accel_cycles
        assert mine.energy_pj == theirs.energy_pj
        assert mine.power_mw == theirs.power_mw
        assert mine.edp == theirs.edp
        assert mine.breakdown == theirs.breakdown
