"""Proxy arithmetic, opcode selection, intrinsics, and the error taxonomy."""

import pytest

from repro import frontend as fe
from repro.aladdin.ir import Op
from repro.aladdin.trace import TraceBuilder
from repro.errors import FrontendError
from repro.frontend.proxy import Traced, operand_of


def make_pair():
    """A builder with one float and one int traced value loaded from it."""
    tb = TraceBuilder("proxy-test")
    tb.array("f", 4, word_bytes=8, kind="input", init=[1.5, 2.5, -3.0, 4.0])
    tb.array("n", 4, word_bytes=4, kind="input", init=[3, 7, 2, 9])
    return tb, Traced(tb, tb.load("f", 0)), Traced(tb, tb.load("n", 0))


def last_op(tb):
    return tb.node_op[-1]


class TestOpcodeSelection:
    def test_float_binary_ops(self):
        tb, f, _n = make_pair()
        for expr, op in [(lambda: f + 1.0, Op.FADD),
                         (lambda: f - 1.0, Op.FSUB),
                         (lambda: f * 2.0, Op.FMUL),
                         (lambda: f / 2.0, Op.FDIV)]:
            result = expr()
            assert last_op(tb) == op
            assert isinstance(result, Traced)

    def test_int_binary_ops(self):
        tb, _f, n = make_pair()
        for expr, op, want in [(lambda: n + 1, Op.ADD, 4),
                               (lambda: n - 1, Op.SUB, 2),
                               (lambda: n * 2, Op.MUL, 6),
                               (lambda: n // 2, Op.DIV, 1),
                               (lambda: n & 1, Op.AND, 1),
                               (lambda: n | 4, Op.OR, 7),
                               (lambda: n ^ 1, Op.XOR, 2),
                               (lambda: n << 1, Op.SHL, 6),
                               (lambda: n >> 1, Op.SHR, 1)]:
            result = expr()
            assert last_op(tb) == op
            assert result.concrete == want

    def test_mixed_operands_promote_to_float(self):
        tb, f, n = make_pair()
        assert isinstance((f + n), Traced)
        assert last_op(tb) == Op.FADD
        n + 1.0
        assert last_op(tb) == Op.FADD

    def test_int_truediv_is_float_division(self):
        # Python semantics: 3 / 2 == 1.5 even for ints.
        tb, _f, n = make_pair()
        assert (n / 2).concrete == 1.5
        assert last_op(tb) == Op.FDIV

    def test_reflected_ops(self):
        tb, f, _n = make_pair()
        result = 2.0 * f
        assert last_op(tb) == Op.FMUL
        assert result.concrete == 3.0
        result = 10.0 - f
        assert result.concrete == 8.5

    def test_negation_is_zero_minus(self):
        tb, f, n = make_pair()
        assert (-f).concrete == -1.5
        assert last_op(tb) == Op.FSUB
        assert (-n).concrete == -3
        assert last_op(tb) == Op.SUB

    def test_values_track_concrete_arithmetic(self):
        _tb, f, _n = make_pair()
        assert ((f + 0.5) * 2.0).concrete == 4.0

    def test_bitwise_on_floats_rejected(self):
        _tb, f, _n = make_pair()
        with pytest.raises(FrontendError, match="integer operands"):
            f & 1
        with pytest.raises(FrontendError, match="integer operands"):
            f // 2


class TestComparisons:
    def test_gt_emits_compare(self):
        tb, f, n = make_pair()
        assert (f > 0.0).concrete == 1
        assert last_op(tb) == Op.FCMP
        assert (n > 5).concrete == 0
        assert last_op(tb) == Op.ICMP

    def test_lt_swaps_operands(self):
        # a < b is emitted as cmp(b, a): 1 iff b > a.
        _tb, f, _n = make_pair()
        assert (f < 2.0).concrete == 1
        assert (f < 1.0).concrete == 0

    def test_non_strict_and_equality_rejected(self):
        _tb, f, _n = make_pair()
        with pytest.raises(FrontendError, match="strict greater-than"):
            f >= 1.0
        with pytest.raises(FrontendError, match="strict greater-than"):
            f <= 1.0
        with pytest.raises(FrontendError, match="=="):
            f == 1.5
        with pytest.raises(FrontendError, match="=="):
            f != 1.5

    def test_unhashable(self):
        _tb, f, _n = make_pair()
        with pytest.raises(TypeError):
            hash(f)


class TestForbiddenEscapes:
    def test_bool_names_the_alternatives(self):
        _tb, f, _n = make_pair()
        with pytest.raises(FrontendError, match="fe.select"):
            bool(f)
        with pytest.raises(FrontendError, match="control flow"):
            if f > 0.0:  # the compare returns Traced; `if` calls __bool__
                pass

    def test_builtin_min_max_rejected(self):
        _tb, f, _n = make_pair()
        with pytest.raises(FrontendError, match="fe.fmin"):
            min(f, 0.0)

    def test_implicit_conversions_rejected(self):
        _tb, f, n = make_pair()
        with pytest.raises(FrontendError, match="int"):
            int(f)
        with pytest.raises(FrontendError, match="float"):
            float(f)
        with pytest.raises(FrontendError, match="__index__"):
            list(range(10))[n]
        with pytest.raises(FrontendError, match="abs"):
            abs(f)

    def test_mod_and_pow_rejected_with_rewrites(self):
        _tb, _f, n = make_pair()
        with pytest.raises(FrontendError, match="//"):
            n % 3
        with pytest.raises(FrontendError, match="multiplies"):
            n ** 2

    def test_operand_of_rejects_non_numbers(self):
        with pytest.raises(FrontendError, match="unsupported"):
            operand_of("three")
        with pytest.raises(FrontendError, match="unsupported"):
            operand_of(True)


class TestIntrinsics:
    def test_sqrt_concrete_and_traced_agree(self):
        tb, f, _n = make_pair()
        traced = fe.sqrt(f * f)
        assert last_op(tb) == Op.FSQRT
        assert traced.concrete == fe.sqrt(1.5 * 1.5) == 1.5

    def test_sqrt_of_negative_uses_abs(self):
        assert fe.sqrt(-4.0) == 2.0

    def test_select(self):
        tb, f, _n = make_pair()
        picked = fe.select(f > 2.0, f, 0.0)
        assert last_op(tb) == Op.SELECT
        assert picked.concrete == 0.0
        assert fe.select(1, "a", "b") == "a"  # concrete path is plain Python

    def test_fmin_fmax(self):
        tb, f, n = make_pair()
        assert fe.fmin(f, 1.0).concrete == 1.0
        assert fe.fmax(f, 1.0).concrete == 1.5
        assert fe.fmax(n, 5).concrete == 5
        assert tb.op_histogram()[Op.SELECT] == 3
        assert fe.fmin(3, 7) == 3
        assert fe.fmax(3.0, 7.0) == 7.0

    def test_concrete_escape(self):
        tb, f, _n = make_pair()
        nodes_before = tb.num_nodes
        assert fe.concrete(f) == 1.5
        assert fe.concrete(42) == 42
        assert tb.num_nodes == nodes_before  # the escape is not traced

    def test_explicit_compares(self):
        tb, _f, n = make_pair()
        assert fe.icmp(n + 0, 2).concrete == 1
        assert last_op(tb) == Op.ICMP
        assert fe.fcmp(0.0 + (n * 1.0), 99.0).concrete == 0
        assert last_op(tb) == Op.FCMP
        assert fe.icmp(3, 2) == 1
        assert fe.fcmp(1.0, 2.0) == 0


class TestParallelRangeOutsideKernel:
    def test_behaves_like_range(self):
        assert list(fe.parallel_range(4)) == [0, 1, 2, 3]
        assert list(fe.parallel_range(2, 8, 3)) == [2, 5]
