"""Fixtures: keep dynamic registrations from leaking across tests.

The suite-wide invariant that the registry holds exactly the 19 builtin
MachSuite kernels (asserted by the coverage tests) must survive tests
that register frontend kernels; ``clean_registry`` snapshots the dynamic
state and restores it afterwards.
"""

import os

import pytest

from repro.workloads import registry


@pytest.fixture
def clean_registry():
    before_instances = dict(registry._INSTANCES)
    before_paths = set(registry._LOADED_KERNEL_PATHS)
    before_env = os.environ.get(registry.ENV_KERNEL_PATHS)
    yield registry
    for name in list(registry._INSTANCES):
        if name not in before_instances:
            registry.unregister_workload(name)
    registry._INSTANCES.update(before_instances)
    registry._LOADED_KERNEL_PATHS.clear()
    registry._LOADED_KERNEL_PATHS.update(before_paths)
    if before_env is None:
        os.environ.pop(registry.ENV_KERNEL_PATHS, None)
    else:
        os.environ[registry.ENV_KERNEL_PATHS] = before_env
