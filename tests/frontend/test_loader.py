"""Kernel files: loading, collection, and worker-process advertising."""

import os
import textwrap

import pytest

from repro import frontend as fe
from repro.errors import FrontendError
from repro.frontend.loader import (
    advertise_kernel_path,
    collect_kernels,
    load_kernel_file,
)
from repro.workloads import registry
from repro.workloads.registry import ENV_KERNEL_PATHS, Workload

SAXPY_SOURCE = textwrap.dedent("""\
    from repro import frontend as fe

    @fe.kernel(description="scaled vector add")
    def saxpy(a: fe.Array("a", 16, word_bytes=8, kind="input"),
              b: fe.Array("b", 16, word_bytes=8, kind="input"),
              y: fe.Array("y", 16, word_bytes=8, kind="output")):
        for i in fe.parallel_range(16):
            y[i] = 2.0 * a[i] + b[i]

    if __name__ == "__main__":
        raise SystemExit("demo block must not run under the loader")
    """)


def write_kernel_file(tmp_path, source=SAXPY_SOURCE, name="kern.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestLoadKernelFile:
    def test_loads_registers_and_advertises(self, tmp_path, clean_registry):
        path = write_kernel_file(tmp_path)
        kernels = load_kernel_file(path)
        assert [wl.name for wl in kernels] == ["saxpy"]
        assert "saxpy" in registry.workload_names()
        assert os.path.abspath(path) in \
            os.environ[ENV_KERNEL_PATHS].split(os.pathsep)

    def test_main_block_skipped(self, tmp_path, clean_registry):
        load_kernel_file(write_kernel_file(tmp_path))  # would SystemExit

    def test_register_false_only_collects(self, tmp_path, clean_registry):
        kernels = load_kernel_file(write_kernel_file(tmp_path),
                                   register=False)
        assert kernels[0].name == "saxpy"
        assert "saxpy" not in registry.workload_names()

    def test_missing_file(self, clean_registry):
        with pytest.raises(FrontendError, match="not found"):
            load_kernel_file("/nonexistent/kernels.py")

    def test_broken_file(self, tmp_path, clean_registry):
        path = write_kernel_file(tmp_path, "this is not python !!!")
        with pytest.raises(FrontendError, match="failed to execute"):
            load_kernel_file(path)

    def test_empty_file(self, tmp_path, clean_registry):
        path = write_kernel_file(tmp_path, "x = 41 + 1\n")
        with pytest.raises(FrontendError, match="defines no kernels"):
            load_kernel_file(path)

    def test_reload_needs_replace(self, tmp_path, clean_registry):
        path = write_kernel_file(tmp_path)
        load_kernel_file(path)
        with pytest.raises(registry.WorkloadError,
                           match="already registered"):
            load_kernel_file(path)
        load_kernel_file(path, replace=True)

    def test_explicit_kernels_list(self, tmp_path, clean_registry):
        source = textwrap.dedent("""\
            from repro import frontend as fe
            from repro.workloads.registry import Workload

            @fe.kernel
            def ignored(x: fe.Array("x", 4, kind="input"),
                        y: fe.Array("y", 4, kind="output")):
                for i in fe.parallel_range(4):
                    y[i] = x[i] + 1.0

            def _build():
                return ignored.build()

            chosen = Workload.from_builder(
                "chosen", build=_build, verify=lambda t: None)
            KERNELS = [chosen]
            """)
        kernels = load_kernel_file(write_kernel_file(tmp_path, source))
        assert [wl.name for wl in kernels] == ["chosen"]
        assert "ignored" not in registry.workload_names()


class TestCollectKernels:
    def test_collects_in_definition_order(self):
        def make(name):
            @fe.kernel(name=name)
            def k(x: fe.Array("x", 4, kind="input"),
                  y: fe.Array("y", 4, kind="output")):
                for i in fe.parallel_range(4):
                    y[i] = x[i] + 1.0
            return k

        a, b = make("a"), make("b")
        assert collect_kernels({"first": a, "second": b, "alias": a}) == \
            [a, b]

    def test_kernels_list_must_hold_workloads(self):
        with pytest.raises(FrontendError, match="Workload instances"):
            collect_kernels({"KERNELS": ["saxpy"]})


class TestAdvertising:
    def test_advertise_is_idempotent(self, tmp_path, clean_registry):
        path = str(tmp_path / "k.py")
        advertise_kernel_path(path)
        advertise_kernel_path(path)
        entries = os.environ[ENV_KERNEL_PATHS].split(os.pathsep)
        assert entries.count(os.path.abspath(path)) == 1

    def test_fresh_registry_resolves_advertised_file(self, tmp_path,
                                                     clean_registry):
        """Simulate a spawn-context sweep worker: a fresh interpreter that
        only knows the workload *name* must resolve it via the env var."""
        path = write_kernel_file(tmp_path)
        load_kernel_file(path)
        # Model the fresh process: dynamic registry state is empty but
        # the environment survives.
        registry._INSTANCES.pop("saxpy")
        registry._LOADED_KERNEL_PATHS.discard(os.path.abspath(path))
        wl = registry.get_workload("saxpy")
        assert isinstance(wl, Workload)
        wl.verify(wl.build())
