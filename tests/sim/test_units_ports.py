"""Unit conversions and memory-request plumbing."""

import pytest

from repro import units
from repro.sim.ports import MemRequest


class TestUnits:
    def test_tick_is_picosecond(self):
        assert units.TICKS_PER_SECOND == 10**12
        assert units.ns_to_ticks(1) == 1000
        assert units.us_to_ticks(1) == 10**6

    def test_round_trips(self):
        assert units.ticks_to_ns(units.ns_to_ticks(84.0)) == pytest.approx(84.0)
        assert units.ticks_to_us(units.us_to_ticks(3.5)) == pytest.approx(3.5)
        assert units.ticks_to_seconds(10**12) == 1.0

    def test_frequency_to_period(self):
        assert units.freq_mhz_to_period_ticks(100) == 10_000
        assert units.freq_mhz_to_period_ticks(1000) == 1_000

    def test_power(self):
        # 1000 pJ over 1 us = 1 mW.
        assert units.power_mw(1000.0, units.us_to_ticks(1)) == \
            pytest.approx(1.0)

    def test_power_zero_interval(self):
        assert units.power_mw(1000.0, 0) == 0.0

    def test_edp(self):
        # 1 J * 1 s.
        assert units.edp(1e12, 10**12) == pytest.approx(1.0)

    def test_edp_monotone_in_both_axes(self):
        assert units.edp(2000, 100) > units.edp(1000, 100)
        assert units.edp(1000, 200) > units.edp(1000, 100)


class TestMemRequest:
    def test_unique_ids(self):
        a = MemRequest(0, 4, False)
        b = MemRequest(0, 4, False)
        assert a.req_id != b.req_id

    def test_complete_fires_callback_once(self):
        seen = []
        req = MemRequest(0x40, 8, True, callback=seen.append)
        req.complete(123)
        assert seen == [req]
        assert req.complete_tick == 123

    def test_complete_without_callback(self):
        MemRequest(0, 4, False).complete(5)  # must not raise

    def test_repr(self):
        r = MemRequest(0x1000, 64, True, requester="dma0")
        assert "W" in repr(r)
        assert "dma0" in repr(r)
