"""Event queue and simulator driver."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import EventQueue, Simulator


class TestEventQueue:
    def test_starts_at_time_zero(self):
        assert EventQueue().now == 0

    def test_schedule_and_run_single_event(self):
        q = EventQueue()
        fired = []
        q.schedule(100, fired.append, "a")
        q.run()
        assert fired == ["a"]
        assert q.now == 100

    def test_events_fire_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(300, order.append, 3)
        q.schedule(100, order.append, 1)
        q.schedule(200, order.append, 2)
        q.run()
        assert order == [1, 2, 3]

    def test_same_tick_events_fire_in_schedule_order(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.schedule(50, order.append, i)
        q.run()
        assert order == list(range(10))

    def test_zero_delay_event_runs_after_current(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule(0, order.append, "nested")

        q.schedule(10, first)
        q.schedule(10, order.append, "second")
        q.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        q = EventQueue()
        q.schedule(100, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(50, lambda: None)

    def test_run_until_stops_before_later_events(self):
        q = EventQueue()
        fired = []
        q.schedule(100, fired.append, 1)
        q.schedule(500, fired.append, 2)
        q.run(until=200)
        assert fired == [1]
        assert q.now == 200
        q.run()
        assert fired == [1, 2]

    def test_event_budget_raises_on_livelock(self):
        q = EventQueue()

        def respawn():
            q.schedule(1, respawn)

        q.schedule(1, respawn)
        with pytest.raises(SimulationError, match="budget"):
            q.run(max_events=1000)

    def test_event_budget_admits_exactly_max_events(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(i + 1, fired.append, i)
        assert q.run(max_events=5) == 5
        assert fired == list(range(5))

    def test_event_budget_exact_bound_enforced(self):
        q = EventQueue()
        fired = []
        for i in range(6):
            q.schedule(i + 1, fired.append, i)
        with pytest.raises(SimulationError, match="budget"):
            q.run(max_events=5)
        # Exactly max_events ran; the budget does not admit a single extra.
        assert fired == list(range(5))

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(42, lambda: None)
        assert q.peek_time() == 42

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_cascading_events(self):
        q = EventQueue()
        times = []

        def chain(depth):
            times.append(q.now)
            if depth:
                q.schedule(10, chain, depth - 1)

        q.schedule(0, chain, 4)
        q.run()
        assert times == [0, 10, 20, 30, 40]


class TestSimulator:
    def test_done_dependency_satisfied(self):
        sim = Simulator()
        done = {"flag": False}
        sim.add_done_dependency(lambda: done["flag"])
        sim.schedule(10, done.__setitem__, "flag", True)
        sim.run()
        assert sim.now == 10

    def test_deadlock_detected(self):
        sim = Simulator()
        sim.add_done_dependency(lambda: False)
        sim.schedule(10, lambda: None)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_all_done_with_no_dependencies(self):
        sim = Simulator()
        assert sim.all_done()
        sim.run()

    def test_now_tracks_queue(self):
        sim = Simulator()
        sim.schedule(123, lambda: None)
        sim.run()
        assert sim.now == 123


class TestRunUntilDrain:
    def test_until_advances_now_when_queue_drains_early(self):
        # All events fire before the horizon: now still lands on `until`,
        # so back-to-back windowed runs tile time without gaps.
        q = EventQueue()
        fired = []
        q.schedule(100, fired.append, 1)
        q.run(until=1000)
        assert fired == [1]
        assert q.now == 1000

    def test_until_on_empty_queue_advances_now(self):
        q = EventQueue()
        q.run(until=400)
        assert q.now == 400

    def test_tiled_windows_preserve_schedule_semantics(self):
        q = EventQueue()
        fired = []
        q.schedule(50, fired.append, "a")
        q.run(until=200)
        # Scheduling after an early drain is relative to the horizon.
        q.schedule(100, fired.append, "b")
        q.run(until=400)
        assert fired == ["a", "b"]
        assert q.now == 400

    def test_profiled_until_drain_matches(self):
        from repro.sim.profiling import EventProfiler
        q = EventQueue()
        q.set_profiler(EventProfiler())
        q.schedule(100, lambda: None)
        q.run(until=1000)
        assert q.now == 1000


class TestSameTickOrdering:
    def test_zero_delay_fifo_interleaves_with_due_heap_events(self):
        # Heap events already due at `now` run before zero-delay FIFO
        # entries created this tick (their sequence numbers are earlier).
        q = EventQueue()
        log = []

        def first():
            log.append("first")
            q.schedule(0, log.append, "zero")

        q.schedule(10, first)
        q.schedule(10, log.append, "second")
        q.run()
        assert log == ["first", "second", "zero"]

    def test_zero_delay_chain_does_not_advance_time(self):
        q = EventQueue()
        depth = [0]

        def recurse():
            depth[0] += 1
            if depth[0] < 5:
                q.schedule(0, recurse)

        q.schedule(7, recurse)
        q.run()
        assert depth[0] == 5
        assert q.now == 7
