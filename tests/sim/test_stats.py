"""Interval trackers and interval algebra."""

import pytest

from repro.sim.stats import (
    IntervalTracker,
    intersect,
    merge_intervals,
    subtract,
    total_covered,
)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept(self):
        assert merge_intervals([(0, 5), (10, 15)]) == [(0, 5), (10, 15)]

    def test_overlap_merged(self):
        assert merge_intervals([(0, 10), (5, 20)]) == [(0, 20)]

    def test_adjacent_merged(self):
        assert merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]

    def test_unsorted_input(self):
        assert merge_intervals([(30, 40), (0, 10), (5, 15)]) == \
            [(0, 15), (30, 40)]

    def test_contained_interval(self):
        assert merge_intervals([(0, 100), (10, 20)]) == [(0, 100)]


class TestIntersect:
    def test_basic(self):
        assert intersect([(0, 10)], [(5, 20)]) == [(5, 10)]

    def test_disjoint(self):
        assert intersect([(0, 5)], [(10, 20)]) == []

    def test_multiple(self):
        a = [(0, 10), (20, 30)]
        b = [(5, 25)]
        assert intersect(a, b) == [(5, 10), (20, 25)]

    def test_identical(self):
        assert intersect([(3, 7)], [(3, 7)]) == [(3, 7)]


class TestSubtract:
    def test_hole_in_middle(self):
        assert subtract([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_no_overlap(self):
        assert subtract([(0, 10)], [(20, 30)]) == [(0, 10)]

    def test_total_removal(self):
        assert subtract([(5, 10)], [(0, 20)]) == []

    def test_left_clip(self):
        assert subtract([(0, 10)], [(0, 4)]) == [(4, 10)]

    def test_right_clip(self):
        assert subtract([(0, 10)], [(6, 12)]) == [(0, 6)]

    def test_multiple_holes(self):
        assert subtract([(0, 100)], [(10, 20), (30, 40)]) == \
            [(0, 10), (20, 30), (40, 100)]


class TestTotalCovered:
    def test_counts_overlap_once(self):
        assert total_covered([(0, 10), (5, 15)]) == 15

    def test_empty(self):
        assert total_covered([]) == 0


class TestIntervalTracker:
    def test_simple_begin_end(self):
        t = IntervalTracker("x")
        t.begin(10)
        t.end(20)
        assert t.intervals == [(10, 20)]

    def test_nested_refcounted(self):
        t = IntervalTracker()
        t.begin(0)
        t.begin(5)
        t.end(10)
        assert t.busy
        t.end(20)
        assert not t.busy
        assert t.intervals == [(0, 20)]

    def test_end_without_begin_raises(self):
        t = IntervalTracker("y")
        with pytest.raises(ValueError):
            t.end(5)

    def test_zero_length_interval_dropped(self):
        t = IntervalTracker()
        t.begin(5)
        t.end(5)
        assert t.intervals == []

    def test_total_busy(self):
        t = IntervalTracker()
        t.add(0, 10)
        t.add(5, 20)
        t.add(30, 35)
        assert t.total_busy() == 25

    def test_zero_length_add_dropped(self):
        t = IntervalTracker()
        t.add(7, 7)
        t.add(9, 8)  # backwards is dropped too, not recorded inverted
        assert t.intervals == []
        assert t.total_busy() == 0

    def test_zero_length_nested_inner_keeps_outer(self):
        t = IntervalTracker()
        t.begin(0)
        t.begin(5)
        t.end(5)   # inner closes at its own start: no record at depth > 0
        t.end(10)
        assert t.intervals == [(0, 10)]

    def test_interleaved_add_and_nested_begin(self):
        t = IntervalTracker()
        t.begin(0)
        t.add(100, 120)     # direct record while an interval is open
        t.begin(5)
        t.add(200, 210)
        t.end(8)
        t.end(10)
        assert t.intervals == [(100, 120), (200, 210), (0, 10)]
        assert t.merged() == [(0, 10), (100, 120), (200, 210)]
        assert t.total_busy() == 40

    def test_add_overlapping_open_interval_merges(self):
        t = IntervalTracker()
        t.begin(0)
        t.add(5, 15)
        t.end(10)
        assert t.merged() == [(0, 15)]

    def test_merged_adjacent_intervals_coalesce(self):
        t = IntervalTracker()
        t.add(0, 10)
        t.add(10, 20)
        t.add(20, 30)
        t.add(40, 50)
        assert t.merged() == [(0, 30), (40, 50)]
        assert t.intervals == [(0, 10), (10, 20), (20, 30), (40, 50)]

    def test_reuse_after_close(self):
        t = IntervalTracker()
        t.begin(0)
        t.end(10)
        t.begin(20)
        t.end(30)
        assert t.intervals == [(0, 10), (20, 30)]
        assert not t.busy
