"""Clock domains."""

import pytest

from repro.sim.clock import ClockDomain


class TestClockDomain:
    def test_100mhz_period_is_10ns(self):
        assert ClockDomain(100).period == 10_000  # ticks = ps

    def test_667mhz_period(self):
        # 1/667MHz = 1.499 ns ~ 1499 ps
        assert ClockDomain(667).period == 1499

    def test_cycles_to_ticks(self):
        c = ClockDomain(100)
        assert c.cycles_to_ticks(5) == 50_000

    def test_ticks_to_cycles_floors(self):
        c = ClockDomain(100)
        assert c.ticks_to_cycles(25_000) == 2

    def test_next_edge_on_edge(self):
        c = ClockDomain(100)
        assert c.next_edge(20_000) == 20_000

    def test_next_edge_between_edges(self):
        c = ClockDomain(100)
        assert c.next_edge(20_001) == 30_000

    def test_edge_after_is_strictly_later(self):
        c = ClockDomain(100)
        assert c.edge_after(20_000) == 30_000
        assert c.edge_after(29_999) == 30_000

    @pytest.mark.parametrize("mhz", [50, 100, 200, 400, 667, 1000])
    def test_round_trip(self, mhz):
        c = ClockDomain(mhz)
        for cycles in (1, 7, 100):
            assert c.ticks_to_cycles(c.cycles_to_ticks(cycles)) == cycles
