"""Event-loop profiler: attribution, zero-overhead detachment, reports."""

import pytest

from repro.core.soc import run_design
from repro.sim.kernel import EventQueue
from repro.sim.profiling import EventProfiler, profile_run


class Pinger:
    def __init__(self, queue, hops):
        self.queue = queue
        self.remaining = hops
        self.fired = 0

    def ping(self):
        self.fired += 1
        self.remaining -= 1
        if self.remaining > 0:
            self.queue.schedule(5, self.ping)


def free_fn_event(log):
    log.append("free")


class TestAttribution:
    def test_counts_and_component_labels(self):
        queue = EventQueue()
        profiler = EventProfiler()
        queue.set_profiler(profiler)
        pinger = Pinger(queue, hops=7)
        log = []
        queue.schedule(1, pinger.ping)
        queue.schedule(2, free_fn_event, log)
        queue.run()
        assert pinger.fired == 7
        assert log == ["free"]
        assert profiler.records["Pinger.ping"][0] == 7
        assert profiler.records["free_fn_event"][0] == 1
        assert profiler.total_events == 8

    def test_wall_time_accumulates(self):
        queue = EventQueue()
        # A deterministic fake timer: each call advances 1.0 "seconds".
        ticks = iter(range(1000))
        profiler = EventProfiler(timer=lambda: float(next(ticks)))
        queue.set_profiler(profiler)
        pinger = Pinger(queue, hops=3)
        queue.schedule(1, pinger.ping)
        queue.run()
        count, secs = profiler.records["Pinger.ping"]
        assert count == 3
        assert secs == pytest.approx(3.0)
        assert profiler.events_per_second() == pytest.approx(1.0)

    def test_exception_still_recorded_and_propagates(self):
        queue = EventQueue()
        profiler = EventProfiler()
        queue.set_profiler(profiler)

        def boom():
            raise RuntimeError("bang")

        queue.schedule(1, boom)
        with pytest.raises(RuntimeError):
            queue.run()
        (key, (count, _secs)), = profiler.records.items()
        assert "boom" in key
        assert count == 1


class TestDetached:
    def test_no_profiler_records_nothing(self):
        queue = EventQueue()
        pinger = Pinger(queue, hops=4)
        queue.schedule(1, pinger.ping)
        queue.run()
        assert queue.profiler is None
        assert pinger.fired == 4

    def test_profiled_run_matches_unprofiled_order(self):
        def drive(queue, log):
            queue.schedule(3, log.append, "c")
            queue.schedule(1, log.append, "a")
            queue.schedule(1, log.append, "b")
            queue.schedule(0, log.append, "zero")
            queue.run()

        plain_log = []
        drive(EventQueue(), plain_log)
        prof_queue = EventQueue()
        prof_queue.set_profiler(EventProfiler())
        prof_log = []
        drive(prof_queue, prof_log)
        assert prof_log == plain_log

    def test_detach_stops_recording(self):
        queue = EventQueue()
        profiler = EventProfiler()
        queue.set_profiler(profiler)
        queue.schedule(1, lambda: None)
        queue.run()
        before = profiler.total_events
        queue.set_profiler(None)
        queue.schedule(1, lambda: None)
        queue.run()
        assert profiler.total_events == before


class TestReporting:
    def test_report_lists_heaviest_first_and_truncates(self):
        profiler = EventProfiler()
        profiler.records["Light.cb"] = [10, 0.001]
        profiler.records["Heavy.cb"] = [2, 0.5]
        report = profiler.report()
        assert report.index("Heavy.cb") < report.index("Light.cb")
        top1 = profiler.report(top=1)
        assert "Heavy.cb" in top1 and "Light.cb" not in top1
        assert "events/s" in top1

    def test_as_dict_sorted_by_time(self):
        profiler = EventProfiler()
        profiler.records["a"] = [1, 0.1]
        profiler.records["b"] = [1, 0.9]
        assert list(profiler.as_dict()) == ["b", "a"]
        assert profiler.as_dict()["b"] == {"events": 1, "seconds": 0.9}

    def test_clear(self):
        profiler = EventProfiler()
        profiler.records["a"] = [1, 0.1]
        profiler.clear()
        assert profiler.total_events == 0


class TestEndToEnd:
    def test_run_design_with_profiler_attributes_scheduler(self):
        result, profiler = profile_run(run_design, "fft-transpose")
        assert result.accel_cycles > 0
        keys = "\n".join(profiler.records)
        assert "DatapathScheduler" in keys
        assert profiler.total_events > 100
        assert profiler.total_seconds > 0

    def test_run_design_profiled_stats_identical(self):
        plain = run_design("fft-transpose")
        profiled, _prof = profile_run(run_design, "fft-transpose")
        assert profiled.total_ticks == plain.total_ticks
        assert profiled.stats == plain.stats
