"""The HTTP face: endpoints, error mapping, client, serve() lifecycle."""

import json
import os
import textwrap
import threading
import urllib.request

import pytest

from repro.core.config import DesignPoint
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.serve import SweepService
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.httpd import design_from_json, make_server, serve

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


@pytest.fixture
def endpoint(tmp_path):
    """A live server on an ephemeral port; yields (client, service)."""
    service = SweepService(str(tmp_path), batch_window=0.005)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


class TestDesignFromJson:
    def test_round_trips_fields(self):
        d = DesignPoint(lanes=4, partitions=2)
        assert design_from_json(dict(d.__dict__)).__dict__ == d.__dict__

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown design field"):
            design_from_json({"lanes": 4, "warp_speed": 9})

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            design_from_json([1, 2, 3])


class TestEndpoints:
    def test_health(self, endpoint):
        client, service = endpoint
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["cache_dir"] == service.cache_dir
        assert doc["cached_points"] == 0
        assert doc["fidelity"] == "per-workload"

    def test_workloads(self, endpoint):
        client, _service = endpoint
        assert WORKLOAD in client.workloads()

    def test_sweep_then_stats(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(2)
        doc = client.sweep(WORKLOAD, designs)
        assert doc["workload"] == WORKLOAD
        assert doc["service"]["dispatches"] == 2
        serial = json.loads(results_to_json(run_sweep(WORKLOAD, designs)))
        got = [{k: v for k, v in record.items() if k != "fidelity"}
               for record in doc["results"]]
        assert got == serial
        stats = client.stats()
        assert stats["service"]["dispatches"] == 2
        assert stats["engine"]["evaluated"] == 2

    def test_second_sweep_hits(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(1)
        client.sweep(WORKLOAD, designs)
        doc = client.sweep(WORKLOAD, designs)
        assert doc["service"] == {"points": 1, "hits": 1, "joins": 0,
                                  "dispatches": 0, "failures": 0,
                                  "tier": "exact"}

    def test_query_edp_over_explicit_designs(self, endpoint):
        client, _service = endpoint
        doc = client.query("edp", WORKLOAD, designs=quick_designs(3))
        assert doc["kind"] == "edp"
        assert doc["edp_optimal"]["workload"] == WORKLOAD
        assert doc["service"]["points"] == 3

    def test_warm_only_query_never_simulates(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(2)
        client.sweep(WORKLOAD, designs[:1])
        doc = client.query("sweep", WORKLOAD, designs=designs,
                           evaluate=False)
        assert doc["service"]["tier"] == "warm"
        assert doc["missing"] == 1
        assert len(doc["results"]) == 1

    def test_designs_accept_plain_dicts(self, endpoint):
        client, _service = endpoint
        doc = client.sweep(WORKLOAD, [{"lanes": 2, "partitions": 2}])
        assert doc["service"]["points"] == 1


class TestErrorMapping:
    def test_unknown_workload_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="unknown workload") as info:
            client.sweep("not-a-workload", quick_designs(1))
        assert info.value.status == 400

    def test_unknown_design_field_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="unknown design field"):
            client.sweep(WORKLOAD, [{"warp_speed": 9}])

    def test_bad_kind_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="kind") as info:
            client.query("bogus", WORKLOAD, designs=quick_designs(1))
        assert info.value.status == 400

    def test_empty_sweep_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="non-empty"):
            client.sweep(WORKLOAD, [])

    def test_fast_without_calibration_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="no calibration") as info:
            client.sweep(WORKLOAD, quick_designs(1), fidelity="fast")
        assert info.value.status == 400

    def test_malformed_json_body_is_400(self, endpoint):
        client, _service = endpoint
        req = urllib.request.Request(
            client.base_url + "/query", data=b"this is not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 400

    def test_unknown_get_endpoint_is_404(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client._request("/nope")
        assert info.value.status == 404

    def test_unknown_post_endpoint_is_404(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client._request("/nope", payload={})
        assert info.value.status == 404

    def test_service_error_carries_server_message(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client.sweep("not-a-workload", quick_designs(1))
        assert "see GET /workloads" in info.value.message
        assert "HTTP 400" in str(info.value)


FIR_SOURCE = textwrap.dedent("""\
    from repro import frontend as fe

    TAPS, N = 4, 32

    @fe.kernel(description="4-tap FIR filter")
    def fir_mini(x: fe.Array("x", N, word_bytes=8, kind="input"),
                 h: fe.Array("h", TAPS, word_bytes=8, kind="input"),
                 y: fe.Array("y", N - TAPS + 1, word_bytes=8,
                             kind="output")):
        for i in fe.parallel_range(N - TAPS + 1):
            acc = 0.0
            for t in range(TAPS):
                acc = acc + x[i + t] * h[t]
            y[i] = acc
    """)


@pytest.fixture
def clean_registry():
    """Undo dynamic registrations made through the server in-process."""
    from repro.workloads import registry
    before = set(registry._INSTANCES)
    paths = set(registry._LOADED_KERNEL_PATHS)
    env = os.environ.get(registry.ENV_KERNEL_PATHS)
    yield
    for name in set(registry._INSTANCES) - before:
        registry.unregister_workload(name)
    registry._LOADED_KERNEL_PATHS.clear()
    registry._LOADED_KERNEL_PATHS.update(paths)
    if env is None:
        os.environ.pop(registry.ENV_KERNEL_PATHS, None)
    else:
        os.environ[registry.ENV_KERNEL_PATHS] = env


class TestKernelEndpoint:
    def test_submit_then_sweep_then_warm_requery(self, endpoint,
                                                 clean_registry):
        """A brand-new kernel goes end-to-end: POST /kernels, sweep it,
        re-query — the second pass must be all store hits, no dispatch."""
        client, service = endpoint
        doc = client.submit_kernel(FIR_SOURCE, filename="fir_mini.py")
        assert doc["kernels"] == [{"name": "fir-mini",
                                   "description": "4-tap FIR filter",
                                   "source": "frontend"}]
        assert "fir-mini" in client.workloads()
        details = client._request("/workloads")["details"]
        assert {"name": "fir-mini", "source": "frontend"} in details

        designs = [{"lanes": 1, "partitions": 1}, {"lanes": 2,
                                                   "partitions": 2}]
        cold = client.sweep("fir-mini", designs)
        assert cold["service"]["dispatches"] == 2
        assert all(not r.get("failed") for r in cold["results"])

        warm = client.sweep("fir-mini", designs)
        assert warm["service"] == {"points": 2, "hits": 2, "joins": 0,
                                   "dispatches": 0, "failures": 0,
                                   "tier": "exact"}
        assert client.stats()["service"]["dispatches"] == 2

    def test_resubmit_is_idempotent(self, endpoint, clean_registry):
        client, service = endpoint
        first = client.submit_kernel(FIR_SOURCE, filename="fir_mini.py")
        assert client.submit_kernel(FIR_SOURCE,
                                    filename="fir_mini.py") == first
        kernels_dir = os.path.join(service.cache_dir, "kernels")
        assert len(os.listdir(kernels_dir)) == 1

    def test_unloadable_source_is_400(self, endpoint, clean_registry):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="failed to execute") as info:
            client.submit_kernel("this is not python !!!")
        assert info.value.status == 400

    def test_kernel_free_source_is_400(self, endpoint, clean_registry):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="no kernels"):
            client.submit_kernel("x = 1\n")

    def test_empty_source_is_400(self, endpoint, clean_registry):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="non-empty") as info:
            client.submit_kernel("")
        assert info.value.status == 400

    def test_builtin_name_collision_is_400(self, endpoint, clean_registry):
        client, _service = endpoint
        source = FIR_SOURCE.replace('@fe.kernel(description="4-tap FIR '
                                    'filter")',
                                    '@fe.kernel(name="aes-aes")')
        with pytest.raises(ServiceError, match="builtin") as info:
            client.submit_kernel(source)
        assert info.value.status == 400

    def test_unknown_workload_mentions_kernels_endpoint(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="POST /kernels"):
            client.sweep("never-registered", quick_designs(1))


class TestServeLifecycle:
    def test_ready_callback_and_shutdown(self, tmp_path):
        lines = []
        boxed = {}
        bound = threading.Event()

        def ready(server):
            boxed["server"] = server
            bound.set()

        thread = threading.Thread(
            target=serve, args=(str(tmp_path),),
            kwargs={"port": 0, "batch_window": 0.005,
                    "out": lines.append, "ready": ready},
            daemon=True)
        thread.start()
        assert bound.wait(timeout=10)
        host, port = boxed["server"].server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        assert client.health()["status"] == "ok"
        boxed["server"].shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert any("listening on" in line for line in lines)
