"""The HTTP face: endpoints, error mapping, client, serve() lifecycle."""

import json
import threading
import urllib.request

import pytest

from repro.core.config import DesignPoint
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.serve import SweepService
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.httpd import design_from_json, make_server, serve

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


@pytest.fixture
def endpoint(tmp_path):
    """A live server on an ephemeral port; yields (client, service)."""
    service = SweepService(str(tmp_path), batch_window=0.005)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


class TestDesignFromJson:
    def test_round_trips_fields(self):
        d = DesignPoint(lanes=4, partitions=2)
        assert design_from_json(dict(d.__dict__)).__dict__ == d.__dict__

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown design field"):
            design_from_json({"lanes": 4, "warp_speed": 9})

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            design_from_json([1, 2, 3])


class TestEndpoints:
    def test_health(self, endpoint):
        client, service = endpoint
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["cache_dir"] == service.cache_dir
        assert doc["cached_points"] == 0
        assert doc["fidelity"] == "per-workload"

    def test_workloads(self, endpoint):
        client, _service = endpoint
        assert WORKLOAD in client.workloads()

    def test_sweep_then_stats(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(2)
        doc = client.sweep(WORKLOAD, designs)
        assert doc["workload"] == WORKLOAD
        assert doc["service"]["dispatches"] == 2
        serial = json.loads(results_to_json(run_sweep(WORKLOAD, designs)))
        got = [{k: v for k, v in record.items() if k != "fidelity"}
               for record in doc["results"]]
        assert got == serial
        stats = client.stats()
        assert stats["service"]["dispatches"] == 2
        assert stats["engine"]["evaluated"] == 2

    def test_second_sweep_hits(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(1)
        client.sweep(WORKLOAD, designs)
        doc = client.sweep(WORKLOAD, designs)
        assert doc["service"] == {"points": 1, "hits": 1, "joins": 0,
                                  "dispatches": 0, "failures": 0,
                                  "tier": "exact"}

    def test_query_edp_over_explicit_designs(self, endpoint):
        client, _service = endpoint
        doc = client.query("edp", WORKLOAD, designs=quick_designs(3))
        assert doc["kind"] == "edp"
        assert doc["edp_optimal"]["workload"] == WORKLOAD
        assert doc["service"]["points"] == 3

    def test_warm_only_query_never_simulates(self, endpoint):
        client, _service = endpoint
        designs = quick_designs(2)
        client.sweep(WORKLOAD, designs[:1])
        doc = client.query("sweep", WORKLOAD, designs=designs,
                           evaluate=False)
        assert doc["service"]["tier"] == "warm"
        assert doc["missing"] == 1
        assert len(doc["results"]) == 1

    def test_designs_accept_plain_dicts(self, endpoint):
        client, _service = endpoint
        doc = client.sweep(WORKLOAD, [{"lanes": 2, "partitions": 2}])
        assert doc["service"]["points"] == 1


class TestErrorMapping:
    def test_unknown_workload_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="unknown workload") as info:
            client.sweep("not-a-workload", quick_designs(1))
        assert info.value.status == 400

    def test_unknown_design_field_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="unknown design field"):
            client.sweep(WORKLOAD, [{"warp_speed": 9}])

    def test_bad_kind_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="kind") as info:
            client.query("bogus", WORKLOAD, designs=quick_designs(1))
        assert info.value.status == 400

    def test_empty_sweep_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="non-empty"):
            client.sweep(WORKLOAD, [])

    def test_fast_without_calibration_is_400(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError, match="no calibration") as info:
            client.sweep(WORKLOAD, quick_designs(1), fidelity="fast")
        assert info.value.status == 400

    def test_malformed_json_body_is_400(self, endpoint):
        client, _service = endpoint
        req = urllib.request.Request(
            client.base_url + "/query", data=b"this is not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 400

    def test_unknown_get_endpoint_is_404(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client._request("/nope")
        assert info.value.status == 404

    def test_unknown_post_endpoint_is_404(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client._request("/nope", payload={})
        assert info.value.status == 404

    def test_service_error_carries_server_message(self, endpoint):
        client, _service = endpoint
        with pytest.raises(ServiceError) as info:
            client.sweep("not-a-workload", quick_designs(1))
        assert "see GET /workloads" in info.value.message
        assert "HTTP 400" in str(info.value)


class TestServeLifecycle:
    def test_ready_callback_and_shutdown(self, tmp_path):
        lines = []
        boxed = {}
        bound = threading.Event()

        def ready(server):
            boxed["server"] = server
            bound.set()

        thread = threading.Thread(
            target=serve, args=(str(tmp_path),),
            kwargs={"port": 0, "batch_window": 0.005,
                    "out": lines.append, "ready": ready},
            daemon=True)
        thread.start()
        assert bound.wait(timeout=10)
        host, port = boxed["server"].server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        assert client.health()["status"] == "ok"
        boxed["server"].shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert any("listening on" in line for line in lines)
