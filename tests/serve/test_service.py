"""SweepService: dedup lifecycle (hit / join / dispatch) and queries."""

import threading

import pytest

from repro.core.config import DesignPoint
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.core.sweeppool import SweepMetrics, sweep_key
from repro.errors import CalibrationError
from repro.serve import ServiceMetrics, SweepService

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


@pytest.fixture
def service(tmp_path):
    svc = SweepService(str(tmp_path), batch_window=0.005)
    yield svc
    svc.close()


class TestSubmit:
    def test_cold_points_dispatch_once_each(self, service):
        designs = quick_designs(3)
        results, report = service.submit(WORKLOAD, designs)
        assert report["dispatches"] == 3
        assert report["hits"] == report["joins"] == 0
        serial = run_sweep(WORKLOAD, designs)
        assert results_to_json(results) == results_to_json(serial)

    def test_warm_points_hit(self, service):
        designs = quick_designs(2)
        first, _report = service.submit(WORKLOAD, designs)
        second, report = service.submit(WORKLOAD, designs)
        assert report == {"points": 2, "hits": 2, "joins": 0,
                          "dispatches": 0, "failures": 0, "tier": "exact"}
        assert results_to_json(first) == results_to_json(second)

    def test_prewarmed_store_hits_without_service_involvement(
            self, tmp_path):
        # Results cached by a plain run_sweep (another process, CI
        # warm-up) must be hits, not re-dispatches.
        designs = quick_designs(2)
        expected = run_sweep(WORKLOAD, designs, cache_dir=str(tmp_path))
        with SweepService(str(tmp_path), batch_window=0.0) as svc:
            results, report = svc.submit(WORKLOAD, designs)
            assert report["hits"] == 2
            assert report["dispatches"] == 0
        assert results_to_json(results) == results_to_json(expected)

    def test_duplicate_points_in_one_request_join(self, service):
        d = quick_designs(1)[0]
        results, report = service.submit(WORKLOAD, [d, d, d])
        assert report["dispatches"] == 1
        assert report["joins"] == 2
        assert len({results_to_json([r]) for r in results}) == 1

    def test_concurrent_overlapping_clients_dedup(self, tmp_path):
        # K clients, overlapping grids: every unique point simulated at
        # most once fleet-wide — the acceptance-criterion invariant.
        designs = quick_designs(4)
        grids = [designs[0:3], designs[1:4], designs[0:4], designs[2:4]]
        with SweepService(str(tmp_path), batch_window=0.02) as svc:
            outs = [None] * len(grids)
            barrier = threading.Barrier(len(grids))

            def client(i, grid):
                barrier.wait()
                outs[i] = svc.submit(WORKLOAD, grid)

            threads = [threading.Thread(target=client, args=(i, g))
                       for i, g in enumerate(grids)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            unique = {sweep_key(WORKLOAD, d) for g in grids for d in g}
            assert svc.metrics.dispatches == len(unique)
            assert svc.metrics.points == sum(len(g) for g in grids)
            assert (svc.metrics.hits + svc.metrics.joins
                    + svc.metrics.dispatches == svc.metrics.points)
        serial = {sweep_key(WORKLOAD, d): r
                  for d, r in zip(designs, run_sweep(WORKLOAD, designs))}
        for grid, (results, _report) in zip(grids, outs):
            expected = [serial[sweep_key(WORKLOAD, d)] for d in grid]
            assert results_to_json(results) == results_to_json(expected)

    def test_failed_point_is_collected_not_raised(self, service,
                                                  monkeypatch):
        import repro.core.sweeppool as sweeppool

        def explode(task):
            raise RuntimeError("injected")

        monkeypatch.setattr(sweeppool, "_evaluate_task", explode)
        results, report = service.submit(WORKLOAD, quick_designs(1))
        assert report["failures"] == 1
        assert getattr(results[0], "is_failure", False)
        assert "injected" in results[0].error

    def test_submit_after_close_raises(self, tmp_path):
        svc = SweepService(str(tmp_path))
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(WORKLOAD, quick_designs(1))

    def test_unknown_fidelity_rejected(self, service):
        with pytest.raises(ValueError, match="fidelity"):
            service.submit(WORKLOAD, quick_designs(1), fidelity="bogus")

    def test_fast_tier_without_calibration_rejected(self, service):
        with pytest.raises(CalibrationError, match="no calibration"):
            service.submit(WORKLOAD, quick_designs(1), fidelity="fast")


class TestMetricsAttribution:
    def test_joined_points_are_joins_not_hits_or_evaluations(self,
                                                             service):
        # Satellite regression: a joined point must land in joins —
        # counting it as a cache hit or a local evaluation would skew
        # utilization and per-point timings.
        d = quick_designs(1)[0]
        metrics = SweepMetrics()
        _results, _report = service.submit(WORKLOAD, [d, d], cfg=None,
                                           metrics=metrics)
        assert metrics.points == 2
        assert metrics.joins == 1
        assert metrics.evaluated == 1
        assert metrics.cache_hits == 0
        assert metrics.points == (metrics.cache_hits + metrics.joins
                                  + metrics.evaluated + metrics.failures)

    def test_service_metrics_partition(self, service):
        designs = quick_designs(2)
        service.submit(WORKLOAD, designs)
        service.submit(WORKLOAD, designs)
        snap = service.metrics.snapshot()
        assert snap["points"] == 4
        assert snap["hits"] == 2
        assert snap["dispatches"] == 2
        assert (snap["hits"] + snap["joins"] + snap["dispatches"]
                == snap["points"])
        assert snap["latency_p50"] > 0
        assert snap["latency_p95"] >= snap["latency_p50"]

    def test_reg_stats_wiring(self, service):
        from repro.obs.stats import StatRegistry
        service.submit(WORKLOAD, quick_designs(1))
        registry = StatRegistry()
        service.reg_stats(registry)
        assert registry.value("serve.dispatches") == 1
        assert registry.value("serve.queue_depth") == 0
        assert registry.value("serve.engine.evaluated") == 1

    def test_no_manifests_for_service_batches(self, service, tmp_path):
        from repro.core.sweeppool import MANIFEST_DIR
        import os
        service.submit(WORKLOAD, quick_designs(2))
        assert not os.path.exists(os.path.join(str(tmp_path),
                                               MANIFEST_DIR))


class TestServiceMetricsUnit:
    def test_bump_and_snapshot(self):
        m = ServiceMetrics()
        m.bump(requests=1, points=5, hits=2, joins=1, dispatches=2)
        m.observe_latency(0.1)
        m.observe_latency(0.3)
        snap = m.snapshot()
        assert snap["points"] == 5
        assert snap["latency_p50"] == pytest.approx(0.2)

    def test_percentiles_empty_window(self):
        m = ServiceMetrics()
        assert m.latency_p50 == 0.0
        assert m.latency_p95 == 0.0


class TestQuery:
    def test_sweep_query_evaluates_cold_points(self, service):
        designs = quick_designs(2)
        response = service.query("sweep", WORKLOAD, designs=designs)
        assert response["points"] == 2
        assert response["service"]["dispatches"] == 2
        assert len(response["results"]) == 2
        assert all(r["fidelity"] == "exact" for r in response["results"])

    def test_warm_only_query_never_simulates(self, service):
        designs = quick_designs(3)
        service.submit(WORKLOAD, designs[:2])
        before = service.metrics.dispatches
        response = service.query("sweep", WORKLOAD, designs=designs,
                                 evaluate=False)
        assert service.metrics.dispatches == before
        assert response["missing"] == 1
        assert len(response["results"]) == 2

    def test_pareto_and_edp_match_direct_reduction(self, service):
        from repro.core.pareto import edp_optimal, pareto_frontier
        designs = quick_designs(4)
        response = service.query("pareto", WORKLOAD, designs=designs)
        serial = run_sweep(WORKLOAD, designs)
        frontier = pareto_frontier(serial)
        assert len(response["frontier"]) == len(frontier)
        assert (response["edp_optimal"]["edp_js"]
                == pytest.approx(edp_optimal(serial).edp))
        edp = service.query("edp", WORKLOAD, designs=designs)
        assert edp["service"]["hits"] == 4  # second query fully warm
        assert (edp["edp_optimal"]["edp_js"]
                == response["edp_optimal"]["edp_js"])

    def test_figure_query_splits_interfaces(self, service):
        designs = (quick_designs(2)
                   + [DesignPoint(lanes=1, mem_interface="cache"),
                      DesignPoint(lanes=4, mem_interface="cache")])
        response = service.query("figure", WORKLOAD, designs=designs)
        assert set(response["interfaces"]) == {"dma", "cache"}
        for data in response["interfaces"].values():
            assert data["frontier"]
            assert data["edp_optimal"] is not None

    def test_default_space_builds_grid(self, service):
        response = service.query("edp", WORKLOAD, space="dma",
                                 density="quick", evaluate=False)
        assert response["points"] == len(dma_design_space("quick"))
        assert response["missing"] == response["points"]
        assert response["edp_optimal"] is None

    def test_bad_kind_rejected(self, service):
        with pytest.raises(ValueError, match="kind"):
            service.query("histogram", WORKLOAD)

    def test_bad_space_rejected(self, service):
        with pytest.raises(ValueError, match="space"):
            service.query("sweep", WORKLOAD, space="npu")

    def test_response_is_json_able(self, service):
        import json
        response = service.query("pareto", WORKLOAD,
                                 designs=quick_designs(2))
        assert json.loads(json.dumps(response)) == response


class TestTieredService:
    def test_auto_tier_picked_up_from_calibration(self, tmp_path):
        # With a persisted calibration the service defaults to triage;
        # the EDP optimum must still match the exact engine's.
        from repro.core.calibrate import calibrate_workload
        from repro.core.pareto import edp_optimal
        designs = dma_design_space("quick")
        calibrate_workload(WORKLOAD, density="quick",
                           cache_dir=str(tmp_path))
        with SweepService(str(tmp_path), batch_window=0.0) as svc:
            results, report = svc.submit(WORKLOAD, designs)
            assert report["tier"] == "auto"
            exact = [r for r in results
                     if getattr(r, "fidelity", "exact") == "exact"]
            assert exact  # triage confirmed at least the frontier
        serial = run_sweep(WORKLOAD, designs)
        assert (edp_optimal(exact).edp
                == pytest.approx(edp_optimal(serial).edp))

    def test_exact_request_never_joins_auto_entry(self, tmp_path):
        # An in-flight auto evaluation may resolve to a fast-model
        # prediction; an exact client must dispatch its own evaluation
        # rather than risk receiving one.
        from repro.core.calibrate import calibrate_workload
        calibrate_workload(WORKLOAD, density="quick",
                           cache_dir=str(tmp_path))
        d = DesignPoint(lanes=2, partitions=2)  # off the sampled grid
        with SweepService(str(tmp_path), batch_window=0.1) as svc:
            key = sweep_key(WORKLOAD, d)
            assert svc.cache.get(key) is None  # genuinely cold
            reports = {}
            barrier = threading.Barrier(2)

            def ask(tier):
                barrier.wait()
                _r, reports[tier] = svc.submit(WORKLOAD, [d],
                                               fidelity=tier)

            threads = [threading.Thread(target=ask, args=(t,))
                       for t in ("auto", "exact")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # The exact client either dispatched its own entry or hit
            # the cache after the auto batch confirmed it exactly —
            # never a join onto the auto tier.
            assert reports["exact"]["joins"] == 0
            exact_results, _ = svc.submit(WORKLOAD, [d],
                                          fidelity="exact")
            assert getattr(exact_results[0], "fidelity",
                           "exact") == "exact"

    def test_auto_request_joins_exact_entry(self, tmp_path):
        from repro.core.calibrate import calibrate_workload
        calibrate_workload(WORKLOAD, density="quick",
                           cache_dir=str(tmp_path))
        from repro.serve.service import _Inflight
        d = DesignPoint(lanes=2, partitions=2)
        with SweepService(str(tmp_path), batch_window=0.0) as svc:
            key = sweep_key(WORKLOAD, d)
            entry = _Inflight(key, WORKLOAD, d, svc.default_cfg, "exact")
            with svc._lock:
                svc._inflight[key] = {"exact": entry}
            done = {}

            def ask():
                done["out"] = svc.submit(WORKLOAD, [d], fidelity="auto")

            t = threading.Thread(target=ask)
            t.start()
            sentinel = run_sweep(WORKLOAD, [d])[0]
            entry.fulfill(sentinel)
            t.join(30)
            assert not t.is_alive()
            results, report = done["out"]
            assert report["joins"] == 1
            assert results[0] is sentinel
            with svc._lock:
                svc._inflight.clear()
