"""CPU driver: flush, invalidate, ioctl, spin-wait."""

import pytest

from repro.cpu.driver import CPUDriver, DriverTimings
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.units import ns_to_ticks


def make_driver(flush_ns=84.0, inval_ns=71.0, ioctl_ns=500.0, poll_ns=100.0):
    sim = Simulator()
    cpu_clock = ClockDomain(667)
    dram = DRAM(sim)
    cache = Cache(sim, cpu_clock, "cpu", 64 * 1024, 64, 8)
    driver = CPUDriver(sim, cpu_clock, cpu_cache=cache, dram=dram,
                       timings=DriverTimings(flush_ns, inval_ns, ioctl_ns,
                                             poll_ns))
    return sim, driver, cache, dram


class TestFlush:
    def test_flush_rate_84ns_per_line(self):
        sim, driver, cache, _ = make_driver()
        cache.preload(0, 64 * 64)
        done = []
        driver.flush_region(0, 64 * 64, lambda: done.append(sim.now))
        sim.run()
        assert done[0] == ns_to_ticks(64 * 84.0)
        assert driver.lines_flushed == 64

    def test_partial_line_regions_round_up(self):
        sim, driver, _c, _ = make_driver()
        done = []
        driver.flush_region(0, 100, lambda: done.append(sim.now))
        sim.run()
        assert driver.lines_flushed == 2  # 100 B spans 2 lines

    def test_unaligned_region(self):
        sim, driver, _c, _ = make_driver()
        done = []
        driver.flush_region(32, 64, lambda: done.append(1))
        sim.run()
        assert driver.lines_flushed == 2  # [32,96) spans lines 0 and 64

    def test_dirty_lines_written_to_dram(self):
        sim, driver, cache, dram = make_driver()
        cache.preload(0, 256)  # 4 dirty lines
        driver.flush_region(0, 256, lambda: None)
        sim.run()
        assert driver.dirty_writebacks == 4
        assert dram.writes == 4

    def test_clean_lines_no_writeback(self):
        sim, driver, _cache, dram = make_driver()
        driver.flush_region(0, 256, lambda: None)
        sim.run()
        assert driver.dirty_writebacks == 0
        assert dram.writes == 0

    def test_flush_busy_interval(self):
        sim, driver, cache, _ = make_driver()
        cache.preload(0, 128)
        driver.flush_region(0, 128, lambda: None)
        sim.run()
        assert driver.flush_busy.total_busy() == ns_to_ticks(2 * 84.0)


class TestInvalidate:
    def test_invalidate_rate_71ns_per_line(self):
        sim, driver, cache, _ = make_driver()
        cache.preload(0, 64 * 8)
        done = []
        driver.invalidate_region(0, 64 * 8, lambda: done.append(sim.now))
        sim.run()
        assert done[0] == ns_to_ticks(8 * 71.0)
        assert driver.lines_invalidated == 8

    def test_invalidate_drops_lines_without_dram_traffic(self):
        sim, driver, cache, dram = make_driver()
        cache.preload(0, 128)
        driver.invalidate_region(0, 128, lambda: None)
        sim.run()
        assert dram.writes == 0
        from repro.memory.coherence import LineState
        assert cache.peek_state(0) == LineState.INVALID


class TestInvocation:
    def test_ioctl_latency(self):
        sim, driver, *_ = make_driver(ioctl_ns=500.0)
        done = []
        driver.ioctl_invoke(lambda: done.append(sim.now))
        sim.run()
        assert done[0] == ns_to_ticks(500.0)

    def test_spin_wait_polls_until_flag(self):
        sim, driver, *_ = make_driver(poll_ns=100.0)
        flag = {"done": False}
        seen = []
        driver.spin_wait(lambda: flag["done"], lambda: seen.append(sim.now))
        sim.schedule(ns_to_ticks(950.0), flag.__setitem__, "done", True)
        sim.run()
        # Completion observed at the first poll after the flag went up.
        assert seen[0] == ns_to_ticks(1000.0)
        assert driver.polls == 10

    def test_spin_wait_immediate(self):
        sim, driver, *_ = make_driver(poll_ns=100.0)
        seen = []
        driver.spin_wait(lambda: True, lambda: seen.append(sim.now))
        sim.run()
        assert seen[0] == ns_to_ticks(100.0)
