"""Perf guard for the sweep robustness layer (``core.sweeppool``).

The fault-tolerance machinery (structured capture, retry bookkeeping,
manifest plumbing) must cost ~nothing when nothing fails: a fault-free
sweep under ``on_error="collect"`` + ``retries`` has to stay within
``MAX_OVERHEAD`` of the plain serial engine, and return byte-identical
results.  Wall-clock ratios of the *same* workload on the *same* host
need no calibration, so this file compares the two paths directly.

As with ``test_perf_core.py``, the overhead check always reports but only
fails the suite under ``REPRO_PERF_ENFORCE=1`` (CI's perf-smoke job); the
results-identical check is deterministic and always enforced.  Numbers are
emitted to ``BENCH_sweep.json`` (override with ``REPRO_BENCH_SWEEP_OUT``).

Run directly with ``python -m pytest benchmarks/test_perf_sweep.py -s``.
"""

import json
import os
import time

from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep

WORKLOAD = "aes-aes"
OUT_PATH = os.environ.get("REPRO_BENCH_SWEEP_OUT", "BENCH_sweep.json")
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE") == "1"
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
MAX_OVERHEAD = 1.35


def _best(fn, reps=REPS):
    return min(fn() for _ in range(reps))


def _timed(**kwargs):
    designs = dma_design_space("quick")

    def once():
        t0 = time.perf_counter()
        results = run_sweep(WORKLOAD, designs, **kwargs)
        return time.perf_counter() - t0, results

    best, results = once()
    for _ in range(REPS - 1):
        elapsed, results = once()
        best = min(best, elapsed)
    return best, results


def test_robust_path_overhead_and_parity():
    # Warm the trace/DDG caches so neither path pays one-time setup.
    run_sweep(WORKLOAD, dma_design_space("quick")[:1])

    plain_s, plain = _timed()
    robust_s, robust = _timed(on_error="collect", retries=1, fault="")

    assert results_to_json(robust) == results_to_json(plain), \
        "fault-free robust sweep diverged from the serial engine"

    overhead = robust_s / plain_s
    doc = {
        "workload": WORKLOAD,
        "points": len(plain),
        "plain_seconds": plain_s,
        "robust_seconds": robust_s,
        "overhead_ratio": overhead,
        "max_overhead": MAX_OVERHEAD,
        "enforced": ENFORCE,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"\nsweep robustness overhead: plain {plain_s:.3f}s, "
          f"robust {robust_s:.3f}s -> {overhead:.3f}x "
          f"(limit {MAX_OVERHEAD}x, enforce={ENFORCE})")

    if ENFORCE:
        assert overhead <= MAX_OVERHEAD, (
            f"fault-free robust sweep is {overhead:.2f}x the plain serial "
            f"engine (limit {MAX_OVERHEAD}x)")
