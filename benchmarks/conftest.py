"""Benchmark harness configuration.

Each ``test_figNN_*`` file regenerates one table/figure of the paper and
prints the corresponding rows/series (captured by pytest; run with ``-s``
to see them live).  Sweeps are memoized inside :mod:`repro.core.figures`,
so running the whole directory in one process shares work between
Figures 8, 9 and 10.

Set ``REPRO_BENCH_DENSITY=quick|standard|full`` to trade sweep resolution
for runtime (default: standard).
"""

import os

import pytest

DENSITY = os.environ.get("REPRO_BENCH_DENSITY", "standard")


@pytest.fixture(scope="session")
def density():
    return DENSITY


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
