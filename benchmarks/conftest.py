"""Benchmark harness configuration.

Each ``test_figNN_*`` file regenerates one table/figure of the paper and
prints the corresponding rows/series (captured by pytest; run with ``-s``
to see them live).  Sweeps are memoized inside :mod:`repro.core.figures`,
so running the whole directory in one process shares work between
Figures 8, 9 and 10.

Set ``REPRO_BENCH_DENSITY=quick|standard|full`` to trade sweep resolution
for runtime (default: standard).  Set ``REPRO_SWEEP_JOBS=N`` (0 = one per
CPU) and/or ``REPRO_SWEEP_CACHE=DIR`` to run the figure sweeps through the
parallel / on-disk-memoized engine (:mod:`repro.core.sweeppool`) — with a
warm cache a full re-run evaluates zero new design points.
"""

import os

import pytest

DENSITY = os.environ.get("REPRO_BENCH_DENSITY", "standard")

_SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "1") or 1)
_SWEEP_CACHE = os.environ.get("REPRO_SWEEP_CACHE") or None

if _SWEEP_JOBS != 1 or _SWEEP_CACHE:
    from repro.core import figures

    figures.set_sweep_options(
        parallel=None if _SWEEP_JOBS == 1 else _SWEEP_JOBS,
        cache_dir=_SWEEP_CACHE)


@pytest.fixture(scope="session")
def density():
    return DENSITY


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
