"""Figure 8: power-performance Pareto curves, DMA vs cache.

Paper ordering (left to right): aes and nw unambiguously prefer DMA; gemm
matches DMA performance with a cache but at higher power; the stencils sit
in the middle; md-knn works with either; spmv and fft prefer caches.
"""

from repro.core import figures
from repro.core.reporting import pareto_table

from conftest import run_once


def test_fig08_pareto_curves(benchmark, density, tmp_path):
    data = run_once(benchmark, lambda: figures.fig8(density=density))
    # Plot-ready artifacts for downstream analysis.
    from repro.core.export import results_to_csv, results_to_json
    all_results = [r for entry in data.values()
                   for r in entry["dma"] + entry["cache"]]
    results_to_json(all_results, tmp_path / "fig8.json")
    results_to_csv(all_results, tmp_path / "fig8.csv")
    print(f"\nexported {len(all_results)} design points to "
          f"{tmp_path}/fig8.{{json,csv}}")
    print()
    summary = []
    for workload, entry in data.items():
        print(f"== {workload}")
        print(pareto_table(entry["dma_pareto"], "DMA Pareto frontier:"))
        print(pareto_table(entry["cache_pareto"], "cache Pareto frontier:"))
        d, c = entry["dma_optimum"], entry["cache_optimum"]
        print(f"EDP stars: dma={d.edp:.3e} ({d.design!r})")
        print(f"           cache={c.edp:.3e} ({c.design!r})\n")
        summary.append((workload, "dma" if d.edp <= c.edp else "cache",
                        min(d.edp, c.edp) / max(d.edp, c.edp)))
    for workload, winner, _ratio in summary:
        print(f"{workload:20s} EDP winner: {winner}")

    winners = {w: win for w, win, _ in summary}
    # The paper's unambiguous cases must reproduce.
    assert winners["aes-aes"] == "dma"
    assert winners["nw-nw"] == "dma"
    assert winners["spmv-crs"] == "cache"
    # gemm: cache can match DMA's performance but needs more power.
    gemm = data["gemm-ncubed"]
    assert gemm["cache_optimum"].total_ticks <= \
        1.25 * gemm["dma_optimum"].total_ticks
    assert gemm["cache_optimum"].power_mw > gemm["dma_optimum"].power_mw
    # spmv: the best cache design outperforms the best DMA design outright.
    spmv = data["spmv-crs"]
    assert min(r.total_ticks for r in spmv["cache"]) < \
        min(r.total_ticks for r in spmv["dma"])
    # stencil3d: the cache EDP-star is faster than the DMA EDP-star, at
    # higher power (paper: "2x to 3x increased power").
    s3d = data["stencil-stencil3d"]
    assert s3d["cache_optimum"].total_ticks < s3d["dma_optimum"].total_ticks
    assert s3d["cache_optimum"].power_mw > s3d["dma_optimum"].power_mw
