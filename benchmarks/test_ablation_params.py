"""Ablations over the Figure 3 parameter table.

DESIGN.md calls out several modeled mechanisms whose contribution should be
measurable: cache line size, MSHR count (hit-under-miss), the strided
prefetcher, DMA burst pipelining depth, and double buffering.  Each
ablation runs a focused comparison and prints the series; these are the
"design-choice" experiments that complement the paper's headline figures.
"""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.reporting import format_table
from repro.core.soc import run_design

from conftest import run_once


def test_ablation_cache_line_size(benchmark):
    """Figure 3 sweeps 16/32/64 B lines: long lines amortize fills for
    streaming kernels; short lines waste less bandwidth on sparse ones."""
    def run():
        out = {}
        for workload in ("stencil-stencil2d", "spmv-crs"):
            rows = []
            for line in (16, 32, 64):
                d = DesignPoint(lanes=4, mem_interface="cache",
                                cache_size_kb=8, cache_line=line)
                r = run_design(workload, d)
                rows.append((line, r))
            out[workload] = rows
        return out

    data = run_once(benchmark, run)
    print()
    for workload, rows in data.items():
        print(format_table(
            ["line_B", "time_us", "fills", "bus_bytes"],
            [[line, r.time_us, r.stats["cache_misses"],
              r.stats["bus_bytes"]] for line, r in rows]))
        print(f"   ^ {workload}\n")
    # Streaming stencil: larger lines reduce fill count dramatically.
    stencil = data["stencil-stencil2d"]
    assert stencil[-1][1].stats["cache_misses"] < \
        stencil[0][1].stats["cache_misses"] / 2


def test_ablation_mshrs(benchmark):
    """Hit-under-miss: starving the cache of MSHRs serializes misses."""
    def run():
        rows = []
        for mshrs in (1, 4, 16):
            cfg = SoCConfig(mshrs=mshrs)
            d = DesignPoint(lanes=8, mem_interface="cache", cache_size_kb=8,
                            cache_ports=4)
            rows.append((mshrs, run_design("md-knn", d, cfg)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["mshrs", "time_us"],
                       [[m, r.time_us] for m, r in rows]))
    times = [r.total_ticks for _m, r in rows]
    assert times[0] > times[-1]  # 1 MSHR is clearly worse than 16


def test_ablation_prefetcher(benchmark):
    """The strided prefetcher helps regular streams, not indirect ones."""
    def run():
        out = {}
        for workload in ("stencil-stencil2d", "spmv-crs"):
            res = {}
            for pf in ("none", "stride"):
                d = DesignPoint(lanes=4, mem_interface="cache",
                                cache_size_kb=8, prefetcher=pf)
                res[pf] = run_design(workload, d)
            out[workload] = res
        return out

    data = run_once(benchmark, run)
    print()
    rows = []
    for workload, res in data.items():
        speedup = res["none"].total_ticks / res["stride"].total_ticks
        rows.append([workload, res["none"].time_us, res["stride"].time_us,
                     f"{speedup:.3f}x"])
    print(format_table(["workload", "no_pf_us", "stride_pf_us", "speedup"],
                       rows))
    stencil_gain = (data["stencil-stencil2d"]["none"].total_ticks
                    / data["stencil-stencil2d"]["stride"].total_ticks)
    spmv_gain = (data["spmv-crs"]["none"].total_ticks
                 / data["spmv-crs"]["stride"].total_ticks)
    # The regular stream must benefit at least as much as the indirect one.
    assert stencil_gain >= spmv_gain * 0.95


def test_ablation_dma_outstanding(benchmark):
    """DMA burst pipelining depth: one burst in flight exposes every DRAM
    round trip; a few hide it behind the bus stream."""
    def run():
        rows = []
        for outstanding in (1, 2, 4, 8):
            cfg = SoCConfig(dma_max_outstanding=outstanding)
            d = DesignPoint(lanes=4, partitions=4)
            rows.append((outstanding, run_design("fft-transpose", d, cfg)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["outstanding", "time_us"],
                       [[o, r.time_us] for o, r in rows]))
    assert rows[0][1].total_ticks > rows[-1][1].total_ticks


def test_ablation_double_buffer(benchmark):
    """Section IV-B2's double-buffering variant of full/empty bits."""
    def run():
        out = {}
        for workload in ("stencil-stencil2d", "md-knn"):
            base = DesignPoint(lanes=4, partitions=4, pipelined_dma=True,
                               dma_triggered_compute=True)
            out[workload] = {
                "line_bits": run_design(workload, base),
                "double_buffer": run_design(
                    workload, base.replace(double_buffer=True)),
                "no_trigger": run_design(
                    workload, base.replace(dma_triggered_compute=False)),
            }
        return out

    data = run_once(benchmark, run)
    print()
    rows = [[w, res["no_trigger"].time_us, res["double_buffer"].time_us,
             res["line_bits"].time_us] for w, res in data.items()]
    print(format_table(
        ["workload", "no_trigger_us", "double_buffer_us", "line_bits_us"],
        rows))
    for workload, res in data.items():
        # Any triggered variant beats waiting for the whole transfer.
        assert res["line_bits"].total_ticks <= \
            res["no_trigger"].total_ticks, workload


def test_ablation_loop_pipelining(benchmark):
    """Round barriers (Section IV-D's lane synchronization) vs classic
    Aladdin loop pipelining.  Notable result: nw gains *more* than gemm —
    its wavefront parallelism lies across iteration rounds (cell (i, j+1)
    waits on (i, j), but (i+1, j-1) is independent), exactly what round
    barriers forbid and pipelining recovers."""
    def run():
        out = {}
        for workload in ("gemm-ncubed", "nw-nw"):
            base = DesignPoint(lanes=4, partitions=4)
            out[workload] = {
                "barriers": run_design(workload, base),
                "pipelined": run_design(
                    workload, base.replace(loop_pipelining=True)),
            }
        return out

    data = run_once(benchmark, run)
    print()
    rows = [[w, res["barriers"].time_us, res["pipelined"].time_us,
             f"{res['barriers'].total_ticks / res['pipelined'].total_ticks:.2f}x"]
            for w, res in data.items()]
    print(format_table(["workload", "barriers_us", "pipelined_us",
                        "speedup"], rows))
    for w, res in data.items():
        assert res["pipelined"].total_ticks <= res["barriers"].total_ticks
    nw_gain = (data["nw-nw"]["barriers"].total_ticks
               / data["nw-nw"]["pipelined"].total_ticks)
    # nw's cross-round wavefront parallelism makes it the big winner.
    assert nw_gain > 1.5


def test_ablation_multi_accelerator_contention(benchmark):
    """Direct shared-resource contention: two accelerators, one bus."""
    from repro.core.multi import MultiAcceleratorSoC

    def run():
        soc = MultiAcceleratorSoC([
            ("md-knn", DesignPoint(lanes=4, partitions=4)),
            ("fft-transpose", DesignPoint(lanes=4, partitions=4)),
        ])
        soc.run()
        return soc

    soc = run_once(benchmark, run)
    slowdowns = soc.contention_slowdowns()
    print()
    print(format_table(
        ["workload", "slowdown_vs_alone"],
        [[w, f"{s:.2f}x"] for (w, _d), s in zip(soc.jobs, slowdowns)]))
    print(f"shared-bus utilization: {100 * soc.bus_utilization():.0f}%")
    assert any(s > 1.02 for s in slowdowns)
