"""Figure 6: DMA latency optimizations.

6a: cumulatively applying pipelined DMA and DMA-triggered compute at 4
lanes — pipelining nearly eliminates flush-only time; triggered compute
helps streaming kernels (stencil2d, md-knn) far more than strided ones
(fft-transpose).  6b: with all optimizations, parallelism saturates once
compute is fully overlapped with the serial DMA stream.
"""

from repro.core import figures
from repro.core.reporting import breakdown_table, format_table

from conftest import run_once


def test_fig06a_cumulative_optimizations(benchmark):
    data = run_once(benchmark, figures.fig6a)
    print()
    for workload, rows in data.items():
        print(breakdown_table([r for _label, r in rows],
                              title=f"-- {workload} (baseline / +pipelined "
                                    f"/ +triggered)"))
        print()
    for workload, rows in data.items():
        times = [r.total_ticks for _l, r in rows]
        assert times[0] >= times[1] >= times[2], workload
        base, piped = rows[0][1], rows[1][1]
        assert piped.breakdown["flush_only"] <= base.breakdown["flush_only"]
    # Triggered compute helps the streaming kernel more than the serial one.
    gain = {w: rows[1][1].total_ticks / rows[2][1].total_ticks
            for w, rows in data.items()}
    print(format_table(["workload", "triggered_speedup"],
                       [[w, f"{g:.2f}x"] for w, g in gain.items()]))
    assert gain["md-knn"] > gain["nw-nw"]


def test_fig06b_parallelism_saturation(benchmark):
    data = run_once(benchmark, figures.fig6b)
    print()
    rows = []
    for workload, series in data.items():
        base = series[0][1].total_ticks
        rows.append([workload] + [f"{base / r.total_ticks:.2f}x"
                                  for _lanes, r in series])
    lanes = [str(l) for l, _r in next(iter(data.values()))]
    print(format_table(["workload"] + [f"L{l}" for l in lanes], rows))
    for workload, series in data.items():
        times = [r.total_ticks for _l, r in series]
        # Monotone non-increasing...
        assert all(a >= b * 0.98 for a, b in zip(times, times[1:])), workload
        # ...but saturating: the last doubling gains < 1.5x.
        assert times[-2] / times[-1] < 1.5, workload
