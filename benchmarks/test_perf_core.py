"""Perf-regression microbenchmarks for the simulation core.

Two layers, both emitted to ``BENCH_core.json`` (override the path with
``REPRO_BENCH_OUT``):

* **Event-loop throughput** — events/second through a bare
  :class:`~repro.sim.kernel.EventQueue`, one chain per scheduling path
  (heap-ordered future events, and same-tick FIFO fan-out).
* **End-to-end ``run_design``** — wall seconds for one full offload of the
  three reference workloads at the default design point, plus the speedup
  against the pre-optimization seconds recorded in
  ``BENCH_core_baseline.json``.

Wall-clock numbers are machine-dependent, so the committed baseline also
records a pure-Python *calibration* rate measured on the baseline machine;
regression checks compare calibration-normalized ratios, which transfer
across hosts.  The >20% events/sec regression check always reports, but
only fails the suite when ``REPRO_PERF_ENFORCE=1`` (set in CI's perf-smoke
job) — unguarded wall-clock assertions on developer laptops cause more
noise than they catch.

Run directly with ``python -m pytest benchmarks/test_perf_core.py -s``.
"""

import json
import os
import time

import pytest

from repro.core.soc import run_design
from repro.sim.kernel import EventQueue
from repro.workloads import cached_ddg, cached_trace

WORKLOADS = ("gemm-ncubed", "stencil-stencil2d", "fft-transpose")
OUT_PATH = os.environ.get("REPRO_BENCH_OUT", "BENCH_core.json")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_core_baseline.json")
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE") == "1"
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))

# Shared accumulator: the final test serializes everything measured by the
# earlier ones (pytest runs a file's tests in definition order).
_results = {}


def _best(fn, reps=REPS):
    """Minimum wall seconds over ``reps`` runs (min rejects noise best)."""
    return min(fn() for _ in range(reps))


def calibration_rate(loops=200_000):
    """Machine-speed yardstick: pure-Python iterations/second.

    Used to normalize wall-clock numbers recorded on different hosts; the
    loop mirrors the interpreter-bound character of the simulator core.
    """

    def once():
        t0 = time.perf_counter()
        x = 0
        for i in range(loops):
            x += i & 7
        return time.perf_counter() - t0

    return loops / _best(once)


def test_event_queue_heap_throughput():
    """events/sec through the heap path: a self-rescheduling event chain."""
    n = 200_000

    def once():
        queue = EventQueue()
        state = [0]

        def tick():
            state[0] += 1
            if state[0] < n:
                queue.schedule(1, tick)

        queue.schedule(1, tick)
        t0 = time.perf_counter()
        while queue.step():
            pass
        elapsed = time.perf_counter() - t0
        assert state[0] == n
        return elapsed

    rate = n / _best(once)
    _results["heap_events_per_sec"] = rate
    print(f"\nheap events/sec: {rate:,.0f}")
    assert rate > 0


def test_event_queue_fifo_throughput():
    """events/sec through the same-tick FIFO path (zero-delay fan-out)."""
    n = 200_000

    def once():
        queue = EventQueue()
        state = [0]

        def tick():
            state[0] += 1
            if state[0] < n:
                queue.schedule(0, tick)

        queue.schedule(0, tick)
        t0 = time.perf_counter()
        while queue.step():
            pass
        elapsed = time.perf_counter() - t0
        assert state[0] == n
        return elapsed

    rate = n / _best(once)
    _results["fifo_events_per_sec"] = rate
    print(f"fifo events/sec: {rate:,.0f}")
    assert rate > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_run_design_end_to_end(workload):
    """Wall seconds for one full offload at the default design point."""
    # Warm the shared caches (trace, ddg, scheduler plans) so the number
    # reflects the steady-state cost a sweep pays per design point.
    cached_trace(workload)
    cached_ddg(workload)
    result = run_design(workload)
    assert result.accel_cycles > 0

    def once():
        t0 = time.perf_counter()
        run_design(workload)
        return time.perf_counter() - t0

    secs = _best(once)
    _results.setdefault("run_design_seconds", {})[workload] = secs
    print(f"\n{workload}: {secs:.4f} s/run")


def test_emit_bench_json_and_check_regression():
    """Serialize everything measured above; flag events/sec regressions.

    Compares calibration-normalized events/sec against the committed
    baseline; a drop of more than 20% fails when ``REPRO_PERF_ENFORCE=1``.
    """
    calibration = calibration_rate()
    _results["calibration_ops_per_sec"] = calibration

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)

    # Speedup vs the recorded pre-optimization run_design seconds,
    # adjusted for machine speed via the calibration ratio.
    machine_scale = calibration / baseline["calibration_ops_per_sec"]
    speedups = {}
    for workload, secs in _results.get("run_design_seconds", {}).items():
        pre = baseline["pre_change_run_design_seconds"].get(workload)
        if pre:
            speedups[workload] = (pre / machine_scale) / secs
    _results["run_design_speedup_vs_pre_change"] = speedups

    ratios = {}
    for key in ("heap_events_per_sec", "fifo_events_per_sec"):
        if key in _results and baseline.get(key):
            now_norm = _results[key] / calibration
            base_norm = baseline[key] / baseline["calibration_ops_per_sec"]
            ratios[key] = now_norm / base_norm
    _results["events_per_sec_vs_baseline"] = ratios

    with open(OUT_PATH, "w") as fh:
        json.dump(_results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {OUT_PATH}")
    for key, ratio in ratios.items():
        print(f"{key}: {ratio:.2f}x of baseline")
    for workload, speedup in speedups.items():
        print(f"{workload}: {speedup:.2f}x vs pre-change")

    regressed = {k: r for k, r in ratios.items() if r < 0.8}
    if regressed:
        msg = (f"event throughput regressed >20% vs committed baseline: "
               + ", ".join(f"{k}={r:.2f}x" for k, r in regressed.items()))
        if ENFORCE:
            pytest.fail(msg)
        else:
            print(f"WARNING: {msg} (set REPRO_PERF_ENFORCE=1 to fail)")
