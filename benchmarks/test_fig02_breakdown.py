"""Figure 2: data movement overheads on MachSuite.

2a: md-knn on a 16-lane baseline-DMA design spends only ~25% of cycles
computing.  2b: across MachSuite, roughly half the benchmarks are
compute-bound and half data-movement-bound; flush alone averages ~20%.
"""

from repro.core import figures
from repro.core.reporting import breakdown_table

from conftest import run_once


def test_fig02a_mdknn_timeline(benchmark):
    result = run_once(benchmark, figures.fig2a)
    print()
    print(breakdown_table([result], title="Figure 2a: md-knn, 16-lane "
                                          "baseline DMA"))
    print(f"compute fraction: {result.compute_fraction:.2f} "
          f"(paper: ~0.25)")
    assert 0.10 < result.compute_fraction < 0.45


def test_fig02b_machsuite_breakdown(benchmark):
    rows = run_once(benchmark, figures.fig2b)
    print()
    print(breakdown_table(rows, title="Figure 2b: 16-way designs, baseline "
                                      "DMA flow"))
    compute_bound = sum(1 for r in rows if r.compute_fraction > 0.5)
    avg_flush = sum(r.breakdown_fractions()["flush_only"]
                    for r in rows) / len(rows)
    print(f"\ncompute-bound: {compute_bound}/{len(rows)} "
          f"(paper: about half)")
    print(f"average flush-only fraction: {avg_flush:.2f} (paper: ~0.20)")
    assert 3 <= compute_bound <= 9
    assert 0.05 < avg_flush < 0.30
