"""Perf guard for tiered-fidelity sweeps (``core.calibrate``).

The whole point of the calibrated fast tier is sweep throughput: on a
Figure-8-style grid enriched with the paper's co-design knobs (all four
DMA transfer-optimization classes and three cache line sizes — 820
design points), ``fidelity="auto"`` must be at least ``MIN_SPEEDUP``
faster than the full exact sweep *and* reach the identical answer.

Three checks are deterministic and always enforced:

* the exact-confirmed Pareto frontier equals the full exact sweep's,
  design for design;
* so does the EDP optimum;
* the measured fast-vs-exact errors on confirmed points stay within the
  calibration's per-axis guard bands (the soundness condition the
  triage's pruning proof rests on).

The wall-clock speedup check always reports but only fails the suite
under ``REPRO_PERF_ENFORCE=1`` (CI's perf-smoke job).  Calibration runs
outside the timed region: it is a per-(workload, platform) cost paid
once and persisted, not a per-sweep cost.  Numbers land in
``BENCH_fidelity.json`` (override with ``REPRO_BENCH_FIDELITY_OUT``).

Run directly with ``python -m pytest benchmarks/test_perf_fidelity.py -s``.
"""

import json
import os
import time

from repro.core.calibrate import calibrate_workload, run_sweep_tiered
from repro.core.config import PARAMETER_TABLE
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.sweep import cache_design_space, dma_design_space, run_sweep
from repro.core.sweeppool import SweepMetrics

WORKLOAD = "bfs-bulk"
OUT_PATH = os.environ.get("REPRO_BENCH_FIDELITY_OUT", "BENCH_fidelity.json")
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE") == "1"
MIN_SPEEDUP = 10.0
#: Triage reps — the auto sweep is cheap, so best-of-N smooths scheduler
#: noise; the exact sweep is long enough to be stable single-shot.
AUTO_REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))


def enriched_grid():
    """The full Figure-8 space crossed with the paper's co-design knobs."""
    grid = [d
            for pipelined in (False, True)
            for triggered in (False, True)
            for d in dma_design_space("full", pipelined=pipelined,
                                      triggered=triggered)]
    for line in PARAMETER_TABLE["cache_line_bytes"]:
        grid += [d.replace(cache_line=line)
                 for d in cache_design_space("full")]
    return grid


def _keys(results):
    return [r.design.key() for r in results]


def test_auto_triage_speedup_and_frontier_identity():
    grid = enriched_grid()

    # Calibration (and with it the trace/DDG/isolated-compute caches)
    # happens before any timing.
    cal = calibrate_workload(WORKLOAD, density="full", designs=grid,
                             save=False)

    t0 = time.perf_counter()
    exact = run_sweep(WORKLOAD, grid)
    exact_s = time.perf_counter() - t0

    auto_s = float("inf")
    for _ in range(AUTO_REPS):
        metrics = SweepMetrics()
        t0 = time.perf_counter()
        auto = run_sweep(WORKLOAD, grid, fidelity="auto", calibration=cal,
                         metrics=metrics)
        auto_s = min(auto_s, time.perf_counter() - t0)

    confirmed = [r for r in auto
                 if getattr(r, "fidelity", "exact") == "exact"]

    # Deterministic guarantees: identical frontier, identical optimum,
    # measured error within the calibrated per-axis bounds.
    assert _keys(pareto_frontier(confirmed)) == _keys(
        pareto_frontier(exact)), \
        "auto-mode exact-confirmed frontier diverged from the exact sweep"
    assert edp_optimal(confirmed).design.key() == \
        edp_optimal(exact).design.key(), \
        "auto-mode EDP optimum diverged from the exact sweep"
    terr = metrics.fast_time_error_max
    perr = metrics.fast_power_error_max
    assert terr <= cal.time_bound, (
        f"measured fast-model time error {terr:.3f} exceeds the "
        f"calibrated bound {cal.time_bound:.3f}")
    assert perr <= cal.power_bound, (
        f"measured fast-model power error {perr:.3f} exceeds the "
        f"calibrated bound {cal.power_bound:.3f}")

    speedup = exact_s / auto_s
    doc = {
        "workload": WORKLOAD,
        "points": len(grid),
        "exact_seconds": exact_s,
        "auto_seconds": auto_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "confirmed": metrics.confirmed,
        "pruned": metrics.pruned,
        "fast_time_error_max": terr,
        "fast_power_error_max": perr,
        "time_bound": cal.time_bound,
        "power_bound": cal.power_bound,
        "enforced": ENFORCE,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"\ntiered sweep [{WORKLOAD}, {len(grid)} points]: "
          f"exact {exact_s:.1f}s, auto {auto_s:.1f}s -> {speedup:.1f}x "
          f"(floor {MIN_SPEEDUP}x, enforce={ENFORCE})\n"
          f"  confirmed {metrics.confirmed}, pruned {metrics.pruned}; "
          f"fast error time {terr:.3f}/{cal.time_bound:.3f}, "
          f"power {perr:.3f}/{cal.power_bound:.3f}")

    if ENFORCE:
        assert speedup >= MIN_SPEEDUP, (
            f"auto triage is only {speedup:.1f}x faster than the exact "
            f"sweep (floor {MIN_SPEEDUP}x)")
