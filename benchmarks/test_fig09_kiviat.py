"""Figure 9: microarchitectural parameters across the four scenarios.

Paper: "almost every colored triangle is smaller than the baseline
triangle" — co-designed optima provision fewer lanes, less SRAM, and less
local memory bandwidth than isolated optima; designs for a 32-bit bus are
leaner than for a 64-bit bus.
"""

from repro.core import figures
from repro.core.reporting import format_table

from conftest import run_once


def test_fig09_kiviat(benchmark, density):
    data = run_once(benchmark, lambda: figures.fig9(density=density))
    print()
    for workload, entry in data.items():
        rows = []
        for scenario, axes in entry["normalized"].items():
            design = entry["optima"][scenario].design
            rows.append([scenario, axes["lanes"], axes["sram_bytes"],
                         axes["local_bandwidth"], repr(design)])
        print(format_table(
            ["scenario", "lanes_norm", "sram_norm", "bw_norm", "design"],
            rows))
        print(f"   ^ {workload} (normalized to isolated optimum)\n")

    # Aggregate claim: the overwhelming majority of co-designed axes are
    # at or below the isolated provisioning.
    fractions = [entry["leaner_fraction"] for entry in data.values()]
    overall = sum(fractions) / len(fractions)
    print(f"axes at or below isolated provisioning: {overall:.0%} "
          f"(paper: almost all)")
    assert overall > 0.6
