"""Perf guard for the sweep service (``repro.serve``).

Three claims back the service layer:

* **Dedup invariant** (deterministic, always enforced): K concurrent
  clients submitting overlapping grids cause exactly one dispatch per
  unique point fleet-wide — ``service.metrics.dispatches`` equals the
  number of unique sweep keys — and every client's results are
  bit-identical to a serial :func:`run_sweep` over its grid.

* **Warm queries never simulate** (deterministic + timed): against a
  store pre-warmed with the 820-point enriched Figure-8 grid, a
  Pareto/EDP query answers entirely from cache (zero dispatches, zero
  engine evaluations) and must be at least ``MIN_QUERY_SPEEDUP`` faster
  than the sweep that produced the store.  The reductions must equal
  the ones computed directly from the warming sweep's results.

* **Batch probes beat per-key gets** (satellite: ``SweepCache.get_many``):
  on a large, mostly-cold probe the indexed batch path skips absent
  keys without touching the disk, beating a per-key ``get`` loop by
  ``MIN_GETMANY_SPEEDUP``.

Deterministic assertions always run; the wall-clock floors only fail
the suite under ``REPRO_PERF_ENFORCE=1`` (CI's perf-smoke job).
Numbers land in ``BENCH_serve.json`` (override with
``REPRO_BENCH_SERVE_OUT``).

Run directly with ``python -m pytest benchmarks/test_perf_serve.py -s``.
"""

import hashlib
import json
import os
import threading
import time

from repro.core.config import PARAMETER_TABLE
from repro.core.export import result_record, results_to_json
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.sweep import cache_design_space, dma_design_space, run_sweep
from repro.core.sweeppool import SweepCache, sweep_key
from repro.serve import SweepService

WORKLOAD = "aes-aes"
OUT_PATH = os.environ.get("REPRO_BENCH_SERVE_OUT", "BENCH_serve.json")
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE") == "1"
MIN_QUERY_SPEEDUP = 10.0
MIN_GETMANY_SPEEDUP = 2.0
QUERY_REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))

_numbers = {}


def enriched_grid():
    """The full Figure-8 space crossed with the paper's co-design knobs."""
    grid = [d
            for pipelined in (False, True)
            for triggered in (False, True)
            for d in dma_design_space("full", pipelined=pipelined,
                                      triggered=triggered)]
    for line in PARAMETER_TABLE["cache_line_bytes"]:
        grid += [d.replace(cache_line=line)
                 for d in cache_design_space("full")]
    return grid


def _frontier_keys(results):
    return [r.design.key() for r in pareto_frontier(results)]


def test_concurrent_clients_dedup_to_unique_points(tmp_path):
    designs = dma_design_space("quick")
    # Six clients, heavily overlapping windows onto the same grid.
    grids = [designs[i % 3:][:6] for i in range(6)]
    with SweepService(str(tmp_path / "dedup"), batch_window=0.02) as svc:
        outs = [None] * len(grids)
        barrier = threading.Barrier(len(grids))

        def client(i, grid):
            barrier.wait()
            outs[i] = svc.submit(WORKLOAD, grid)

        threads = [threading.Thread(target=client, args=(i, g))
                   for i, g in enumerate(grids)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0

        unique = {sweep_key(WORKLOAD, d) for g in grids for d in g}
        requested = sum(len(g) for g in grids)
        assert svc.metrics.dispatches == len(unique), (
            f"{svc.metrics.dispatches} dispatches for {len(unique)} "
            f"unique points — the fleet-wide dedup invariant is broken")
        assert svc.metrics.points == requested
        assert (svc.metrics.hits + svc.metrics.joins
                + svc.metrics.dispatches == requested)
        snapshot = svc.metrics.snapshot()

    serial = {sweep_key(WORKLOAD, d): r
              for d, r in zip(designs, run_sweep(WORKLOAD, designs))}
    for grid, (results, _report) in zip(grids, outs):
        expected = [serial[sweep_key(WORKLOAD, d)] for d in grid]
        assert results_to_json(results) == results_to_json(expected), \
            "service results diverged from a serial run_sweep"

    _numbers["dedup"] = {
        "clients": len(grids),
        "requested_points": requested,
        "unique_points": len(unique),
        "dispatches": snapshot["dispatches"],
        "joins": snapshot["joins"],
        "hits": snapshot["hits"],
        "seconds": elapsed,
    }
    print(f"\ndedup [{WORKLOAD}]: {len(grids)} clients, {requested} "
          f"requested -> {snapshot['dispatches']} dispatches "
          f"({len(unique)} unique), {snapshot['joins']} joins, "
          f"{snapshot['hits']} hits in {elapsed:.2f}s")


def test_warm_query_answers_without_simulation(tmp_path):
    grid = enriched_grid()
    store = str(tmp_path / "store")

    t0 = time.perf_counter()
    exact = run_sweep(WORKLOAD, grid, cache_dir=store)
    warm_s = time.perf_counter() - t0

    with SweepService(store, batch_window=0.0) as svc:
        query_s = float("inf")
        for _ in range(QUERY_REPS):
            t0 = time.perf_counter()
            pareto = svc.query("pareto", WORKLOAD, designs=grid)
            edp = svc.query("edp", WORKLOAD, designs=grid)
            query_s = min(query_s, time.perf_counter() - t0)

        # Zero simulations: every point was a store hit, nothing was
        # dispatched, the engine never evaluated a design.
        assert svc.metrics.dispatches == 0, \
            "warm query dispatched simulations"
        assert svc.sweep_metrics.evaluated == 0, \
            "warm query reached the sweep engine"
        assert pareto["service"]["hits"] == len(grid)
        assert pareto["missing"] == 0

    # The reductions must be the ones the warming sweep implies
    # (records match field for field once the service's fidelity tag
    # is set aside).
    def untagged(record):
        return {k: v for k, v in record.items() if k != "fidelity"}

    assert [untagged(r) for r in pareto["frontier"]] == \
        [result_record(f) for f in pareto_frontier(exact)], \
        "queried frontier diverged from the exact sweep's"
    assert untagged(edp["edp_optimal"]) == \
        result_record(edp_optimal(exact)), \
        "queried EDP optimum diverged from the exact sweep's"

    speedup = warm_s / query_s
    _numbers["warm_query"] = {
        "points": len(grid),
        "warm_sweep_seconds": warm_s,
        "query_seconds": query_s,
        "speedup": speedup,
        "min_speedup": MIN_QUERY_SPEEDUP,
    }
    print(f"\nwarm query [{WORKLOAD}, {len(grid)} points]: sweep "
          f"{warm_s:.1f}s, pareto+edp query {query_s:.3f}s -> "
          f"{speedup:.0f}x (floor {MIN_QUERY_SPEEDUP}x, "
          f"enforce={ENFORCE})")

    if ENFORCE:
        assert speedup >= MIN_QUERY_SPEEDUP, (
            f"warm query is only {speedup:.1f}x faster than the warming "
            f"sweep (floor {MIN_QUERY_SPEEDUP}x)")


def test_get_many_beats_per_key_gets(tmp_path):
    # A mostly-cold probe: 400 cached entries, 8000 probed keys.  The
    # per-key loop pays a failed open per absent key; the batch path
    # pays one directory scan and then skips them in memory.
    cached, probed = 400, 8000
    root = str(tmp_path / "cache")
    writer = SweepCache(root)

    def fake_key(i):
        return hashlib.sha256(f"point-{i}".encode()).hexdigest()

    keys = [fake_key(i) for i in range(probed)]
    for key in keys[:cached]:
        writer.put(key, f"result-{key[:8]}")

    t0 = time.perf_counter()
    loop_hits = {}
    for key in keys:
        result = writer.get(key)
        if result is not None:
            loop_hits[key] = result
    loop_s = time.perf_counter() - t0

    # Fresh instance so the timed region includes the index scan.
    reader = SweepCache(root)
    t0 = time.perf_counter()
    batch_hits = reader.get_many(keys)
    batch_s = time.perf_counter() - t0

    assert batch_hits == loop_hits, \
        "get_many returned different results than per-key gets"
    assert len(batch_hits) == cached

    speedup = loop_s / batch_s
    _numbers["get_many"] = {
        "cached_entries": cached,
        "probed_keys": probed,
        "per_key_seconds": loop_s,
        "batch_seconds": batch_s,
        "speedup": speedup,
        "min_speedup": MIN_GETMANY_SPEEDUP,
    }
    print(f"\nget_many [{cached}/{probed} warm]: per-key {loop_s:.3f}s, "
          f"batch {batch_s:.3f}s -> {speedup:.1f}x "
          f"(floor {MIN_GETMANY_SPEEDUP}x, enforce={ENFORCE})")

    if ENFORCE:
        assert speedup >= MIN_GETMANY_SPEEDUP, (
            f"get_many is only {speedup:.1f}x faster than per-key gets "
            f"(floor {MIN_GETMANY_SPEEDUP}x)")


def test_zzz_write_bench_report():
    # Runs last (pytest collects in file order): persist whatever the
    # earlier benchmarks measured, even on a partial run.
    doc = {"workload": WORKLOAD, "enforced": ENFORCE, **_numbers}
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"\nwrote {OUT_PATH}")
