"""Figure 7: datapath parallelism for cache-based accelerators.

Paper: processing time decreases with parallelism; latency time *also*
improves (more memory-level parallelism masks misses) — unlike the DMA
case; bandwidth time does not improve and becomes a larger fraction of
runtime in aggressively parallel designs.
"""

from repro.core import figures
from repro.core.reporting import format_table

from conftest import run_once


def test_fig07_burger_decomposition(benchmark):
    data = run_once(benchmark, figures.fig7)
    print()
    for workload, entry in data.items():
        rows = [[r["lanes"], r["processing"] / 1e6, r["latency"] / 1e6,
                 r["bandwidth"] / 1e6, r["total"] / 1e6]
                for r in entry["rows"]]
        print(format_table(
            ["lanes", "processing_us", "latency_us", "bandwidth_us",
             "total_us"], rows))
        print(f"   ^ {workload}, saturating cache "
              f"{entry['cache_size_kb']} KB\n")

    for workload, entry in data.items():
        rows = entry["rows"]
        first, last = rows[0], rows[-1]
        # Processing time shrinks with lanes.
        assert last["processing"] < first["processing"], workload
        # Bandwidth time's *fraction* of runtime grows with parallelism.
        f_first = first["bandwidth"] / first["total"]
        f_last = last["bandwidth"] / last["total"]
        assert f_last >= f_first * 0.9, workload
