"""Figure 4: performance-model validation.

Paper: gem5-Aladdin vs the Zynq Zedboard — 6.4% average DMA-model error,
5% Aladdin (compute) error, 5% flush-model error.  Our stand-in reference
is the detailed event-driven co-simulation (DESIGN.md substitution #2); the
analytic phase model must stay inside the paper's error envelope.
"""

from repro.core import figures
from repro.core.reporting import format_table, percent

from conftest import run_once


def test_fig04_validation(benchmark):
    suite = run_once(benchmark, figures.fig4)
    rows = [[r.workload, percent(r.total_error),
             percent(r.component_errors["flush"]),
             percent(r.component_errors["dma"]),
             percent(r.component_errors["compute"])]
            for r in suite["rows"]]
    print()
    print(format_table(["workload", "total_err", "flush_err", "dma_err",
                        "compute_err"], rows))
    avg = suite["avg_component_errors"]
    print(f"\naverages: total={percent(suite['avg_total_error'])} "
          f"flush={percent(avg['flush'])} dma={percent(avg['dma'])} "
          f"compute={percent(avg['compute'])}")
    print(f"paper (vs real hardware): dma={percent(0.064)} "
          f"aladdin={percent(0.05)} flush={percent(0.05)}")
    assert suite["avg_total_error"] < 0.06
    assert avg["dma"] < 0.064
    assert avg["flush"] < 0.05
    assert avg["compute"] < 0.05
