"""Figure 10: EDP improvement of co-designed accelerators.

Paper: normalizing to how the isolated-optimal design behaves in a real
system, co-design improves EDP on average by 1.2x (DMA), 2.2x (cache,
32-bit bus), and 2.0x (cache, 64-bit bus), up to 7.4x; gains are larger
for cache-based designs (multi-ported caches are expensive) and for the
more-contended 32-bit bus than the 64-bit one.
"""

from repro.core import figures
from repro.core.reporting import format_table

from conftest import run_once


def test_fig10_edp_improvement(benchmark, density):
    data = run_once(benchmark, lambda: figures.fig10(density=density))
    print()
    rows = []
    for workload, per_scenario in data["rows"].items():
        rows.append([workload] + [
            f"{per_scenario[k]['improvement']:.2f}x"
            for k in ("dma32", "cache32", "cache64")])
    print(format_table(["workload", "dma32", "cache32", "cache64"], rows))
    avg, mx = data["averages"], data["maxima"]
    print(f"\ngeomean improvement: dma32={avg['dma32']:.2f}x "
          f"cache32={avg['cache32']:.2f}x cache64={avg['cache64']:.2f}x")
    print(f"max improvement: {max(mx.values()):.2f}x")
    print(f"paper:              dma32=1.2x cache32=2.2x cache64=2.0x, "
          f"max 7.4x")

    # Shape assertions.
    assert avg["dma32"] >= 1.0
    # Cache scenarios gain more than DMA (expensive multi-ported caches).
    assert avg["cache32"] > avg["dma32"]
    # Somebody gains a lot.
    assert max(mx.values()) > 2.0
