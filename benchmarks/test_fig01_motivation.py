"""Figure 1: isolated vs co-designed design spaces for stencil3d.

Paper: the isolated design space "leans towards more parallel, power-hungry
designs"; accounting for data movement shifts the space "dramatically
towards the lower right, preferring less parallel designs at lower power",
and the isolated EDP optimum differs from the co-designed one.
"""

from repro.core import figures
from repro.core.reporting import format_table

from conftest import run_once


def test_fig01_design_space_shift(benchmark, density):
    data = run_once(benchmark, lambda: figures.fig1(density=density))

    rows = []
    for label, results in (("isolated", data["isolated"]),
                           ("co-designed", data["codesigned"])):
        for r in results:
            rows.append([label, r.design.lanes, r.design.partitions,
                         r.time_us, r.power_mw, f"{r.edp:.3e}"])
    print()
    print(format_table(
        ["space", "lanes", "parts", "time_us", "power_mw", "edp_Js"], rows))
    iso, co = data["isolated_optimum"], data["codesigned_optimum"]
    print(f"\nisolated EDP optimum:    {iso.design!r}")
    print(f"co-designed EDP optimum: {co.design!r}")
    print(f"isolated optimum re-evaluated in system: "
          f"{data['isolated_optimum_in_system'].time_us:.1f} us")
    print(f"EDP gap (isolated-in-system / co-designed): "
          f"{data['edp_gap']:.2f}x   (paper: the two optima differ)")

    # Shape assertions: the co-designed space sits at lower power for the
    # same design, and its optimum is provisioned no more aggressively.
    assert co.design.lanes * co.design.partitions <= \
        iso.design.lanes * iso.design.partitions
    assert data["edp_gap"] >= 1.0
